open Repro_graph
module A1 = Bigarray.Array1

(* Byte layout of a HUBFLAT2 image:

     bytes 0..7          magic "HUBFLAT2"
     word  1             n          (vertex count, 0 <= n < 2^31)
     word  2             total      (label entry count)
     word  3             block      (entries per block, >= 1)
     word  4             blob_len   (bytes of the variable-length blob)
     words 5 .. 5+n      ent_off    (n+1 entry-index CSR offsets, 0 -> total)
     words 6+n .. 6+2n   byte_off   (n+1 byte CSR offsets into the blob,
                                     0 -> blob_len)
     then                blob_len blob bytes, zero-padded to a word boundary

   The region of vertex v is blob[byte_off(v) .. byte_off(v+1)) and,
   for a k-entry hubset split into nb = ceil(k/block) blocks, holds:

     nb skip entries     uint32 LE first hub of the block,
                         uint32 LE byte offset of the block's first
                         entry relative to the region start
     varint              base = the vertex's minimum stored distance
     blocks              first entry of a block:  varint(hub),
                                                  varint(zigzag(d - base))
                         later entries:           varint(hub - prev - 1),
                                                  varint(zigzag(d - base))

   An empty hubset has an empty region. Varints are LEB128 (7 bits per
   byte, high bit = continuation); canonical encodings are minimal and
   at most 9 bytes (63-bit native ints). Because every block opens with
   an absolutely-coded entry, a block is decodable without its
   predecessors — that is what lets the merge consult the skip table
   and leap mid-stream. *)

type buf = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) A1.t

type error =
  | Io of string
  | Not_regular of string
  | Too_short of { bytes : int }
  | Misaligned of { bytes : int }
  | Bad_magic
  | Bad_header of { word : int; msg : string }
  | Length_mismatch of { expected_words : int; actual_words : int }
  | Bad_offsets of { vertex : int; msg : string }
  | Bad_entry of { vertex : int; entry : int; msg : string }

let error_to_string = function
  | Io msg -> "Compact_hub: " ^ msg
  | Not_regular path -> "Compact_hub: not a regular file: " ^ path
  | Too_short { bytes } ->
      Printf.sprintf "Compact_hub: %d bytes is too short for magic + header"
        bytes
  | Misaligned { bytes } ->
      Printf.sprintf "Compact_hub: %d bytes is not a whole number of words"
        bytes
  | Bad_magic -> "Compact_hub: bad magic"
  | Bad_header { word; msg } ->
      Printf.sprintf "Compact_hub: header word at byte %d: %s" word msg
  | Length_mismatch { expected_words; actual_words } ->
      Printf.sprintf
        "Compact_hub: length disagrees with header (expected %d words, file \
         has %d)"
        expected_words actual_words
  | Bad_offsets { vertex; msg } ->
      Printf.sprintf "Compact_hub: offset of vertex %d: %s" vertex msg
  | Bad_entry { vertex; entry; msg } ->
      Printf.sprintf "Compact_hub: entry %d of vertex %d: %s" entry vertex msg

exception Bad of error

type cache = {
  slots : int;
  keys : int array; (* packed unordered pair, or -1 for an empty slot *)
  values : int array;
  mutable hits : int;
  mutable misses : int;
}

type t = {
  n : int;
  total : int;
  block : int;
  blob_len : int;
  ent_off : int array; (* n+1 entry-index offsets, decoded to the heap *)
  byte_off : int array; (* n+1 byte offsets into the blob *)
  buf : buf; (* the whole image: header words + blob + pad *)
  blob_base : int; (* byte index of the blob inside [buf] *)
  path : string; (* "" for a store decoded from in-memory bytes *)
  bytes : int;
  cache : cache option;
}

let make_cache = function
  | 0 -> None
  | s when s < 0 -> invalid_arg "Compact_hub: cache_slots must be non-negative"
  | s ->
      Some
        { slots = s; keys = Array.make s (-1); values = Array.make s 0;
          hits = 0; misses = 0 }

let magic = "HUBFLAT2"
let default_block = 32
let max_n = 0x4000_0000 * 2 (* 2^31: hub ids must fit the uint32 skip slots *)
let min_bytes = 8 * 5 (* magic + n + total + block + blob_len *)
let header_words n = 5 + (2 * (n + 1))

(* ---------------------------------------------------------------- *)
(* Varint + zigzag primitives. *)

let zigzag x = (x lsl 1) lxor (x asr 62)
let unzig v = (v lsr 1) lxor (- (v land 1))

let emit_varint buf x =
  (* LEB128 of the 63-bit pattern of [x] (so any native int, negative
     included, round-trips in at most 9 bytes) *)
  let x = ref x in
  let fin = ref false in
  while not !fin do
    let b = !x land 0x7f in
    x := !x lsr 7;
    if !x = 0 then begin
      Buffer.add_char buf (Char.chr b);
      fin := true
    end
    else Buffer.add_char buf (Char.chr (b lor 0x80))
  done

let emit_u32 buf x =
  Buffer.add_char buf (Char.chr (x land 0xff));
  Buffer.add_char buf (Char.chr ((x lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((x lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((x lsr 24) land 0xff))

(* ---------------------------------------------------------------- *)
(* Encoder. Canonical: one store, one byte string. *)

let to_bytes ?(block = default_block) flat =
  Repro_obs.Span.run ~name:"compact-hub.save" (fun () ->
  if block < 1 then invalid_arg "Compact_hub.to_bytes: block must be >= 1";
  let n = Flat_hub.n flat in
  if n >= max_n then
    invalid_arg "Compact_hub.to_bytes: n exceeds the 2^31 vertex bound";
  let offsets, data = Flat_hub.raw flat in
  let total = Flat_hub.total_size flat in
  let blob = Buffer.create ((4 * total) + 64) in
  let byte_off = Array.make (n + 1) 0 in
  let body = Buffer.create 512 in
  let head = Buffer.create 10 in
  for v = 0 to n - 1 do
    byte_off.(v) <- Buffer.length blob;
    let lo = offsets.(v) and hi = offsets.(v + 1) in
    let k = hi - lo in
    if k > 0 then begin
      let nb = ((k - 1) / block) + 1 in
      let base = ref max_int in
      for e = lo to hi - 1 do
        let d = data.((2 * e) + 1) in
        if d < !base then base := d
      done;
      let base = !base in
      Buffer.clear body;
      Buffer.clear head;
      emit_varint head base;
      let starts = Array.make nb 0 in
      for b = 0 to nb - 1 do
        starts.(b) <- Buffer.length body;
        let j_hi = min k ((b + 1) * block) in
        for j = b * block to j_hi - 1 do
          let e = lo + j in
          let h = data.(2 * e) in
          if j = b * block then emit_varint body h
          else emit_varint body (h - data.(2 * (e - 1)) - 1);
          emit_varint body (zigzag (data.((2 * e) + 1) - base))
        done
      done;
      let data_base = (8 * nb) + Buffer.length head in
      if data_base + Buffer.length body > 0xffff_ffff then
        invalid_arg
          "Compact_hub.to_bytes: vertex region exceeds the uint32 skip range";
      for b = 0 to nb - 1 do
        emit_u32 blob data.(2 * (lo + (b * block)));
        emit_u32 blob (data_base + starts.(b))
      done;
      Buffer.add_buffer blob head;
      Buffer.add_buffer blob body
    end
  done;
  let blob_len = Buffer.length blob in
  byte_off.(n) <- blob_len;
  let pad = (8 - (blob_len mod 8)) mod 8 in
  let out = Bytes.make ((8 * header_words n) + blob_len + pad) '\000' in
  Bytes.blit_string magic 0 out 0 8;
  let word = ref 1 in
  let put x =
    Bytes.set_int64_le out (8 * !word) (Int64.of_int x);
    incr word
  in
  put n;
  put total;
  put block;
  put blob_len;
  Array.iter put offsets;
  Array.iter put byte_off;
  Buffer.blit blob 0 out (8 * header_words n) blob_len;
  Repro_obs.Span.count "bytes" (Bytes.length out);
  Bytes.unsafe_to_string out)

(* ---------------------------------------------------------------- *)
(* Shallow validation: header, both offset tables, and the skip-table
   room check. After it passes, every fixed-position read of the query
   path (skip slots, region bounds) is in bounds; varint reads clamp at
   the region end, so a garbage blob yields wrong distances only. *)

let word64 (buf : buf) i =
  let off = 8 * i in
  let r = ref 0L in
  for k = 7 downto 0 do
    r :=
      Int64.logor (Int64.shift_left !r 8)
        (Int64.of_int (Char.code (A1.get buf (off + k))))
  done;
  !r

let fits_int x = Int64.of_int (Int64.to_int x) = x

let header_field buf ~index =
  let x = word64 buf index in
  let byte = 8 * index in
  if not (fits_int x) then
    Error (Bad_header { word = byte; msg = "overflows native int" })
  else
    let v = Int64.to_int x in
    if v < 0 then Error (Bad_header { word = byte; msg = "negative" })
    else Ok v

let decode_offsets buf ~first_word ~count ~limit ~what =
  (* [count] words, monotone from 0 to [limit], returned as a heap
     array (the price is O(n) heap, already the load's complexity). *)
  let out = Array.make count 0 in
  try
    for i = 0 to count - 1 do
      let x = word64 buf (first_word + i) in
      if not (fits_int x) || Int64.to_int x < 0 then
        raise
          (Bad (Bad_offsets { vertex = i; msg = what ^ " overflows native int" }));
      let v = Int64.to_int x in
      if i = 0 && v <> 0 then
        raise (Bad (Bad_offsets { vertex = 0; msg = what ^ " must start at 0" }));
      if i > 0 && v < out.(i - 1) then
        raise
          (Bad
             (Bad_offsets { vertex = i; msg = what ^ " must be non-decreasing" }));
      if v > limit then
        raise
          (Bad (Bad_offsets { vertex = i; msg = what ^ " exceeds its bound" }));
      out.(i) <- v
    done;
    if out.(count - 1) <> limit then
      raise
        (Bad
           (Bad_offsets
              { vertex = count - 1; msg = what ^ " must end at its bound" }));
    Ok out
  with Bad e -> Error e

let validate ~path ~bytes (buf : buf) ~cache =
  let ( let* ) = Result.bind in
  if bytes < min_bytes then Error (Too_short { bytes })
  else if bytes mod 8 <> 0 then Error (Misaligned { bytes })
  else if
    (try
       let ok = ref true in
       for i = 0 to 7 do
         if A1.get buf i <> magic.[i] then ok := false
       done;
       not !ok
     with _ -> true)
  then Error Bad_magic
  else
    let* n = header_field buf ~index:1 in
    let* () =
      if n >= max_n then
        Error
          (Bad_header { word = 8; msg = "exceeds the 2^31 vertex bound" })
      else Ok ()
    in
    let* total = header_field buf ~index:2 in
    let* block = header_field buf ~index:3 in
    let* () =
      if block < 1 then
        Error (Bad_header { word = 24; msg = "block size must be >= 1" })
      else Ok ()
    in
    let* blob_len = header_field buf ~index:4 in
    let actual_words = bytes / 8 in
    (* saturate so the expected size cannot overflow: any n/blob_len
       beyond the file size already disagrees with the length *)
    let expected_bytes =
      if n > bytes || blob_len > bytes then max_int
      else (8 * header_words n) + blob_len + ((8 - (blob_len mod 8)) mod 8)
    in
    if expected_bytes <> bytes then
      Error
        (Length_mismatch
           { expected_words =
               (if expected_bytes = max_int then max_int
                else expected_bytes / 8);
             actual_words })
    else
      let* ent_off =
        decode_offsets buf ~first_word:5 ~count:(n + 1) ~limit:total
          ~what:"entry offset"
      in
      let* byte_off =
        decode_offsets buf ~first_word:(5 + n + 1) ~count:(n + 1)
          ~limit:blob_len ~what:"byte offset"
      in
      (* every non-empty region must at least hold its skip table and
         the base varint's first byte — this is what bounds the query
         path's fixed-position reads *)
      let rec check_room v =
        if v >= n then Ok ()
        else
          let k = ent_off.(v + 1) - ent_off.(v) in
          if k = 0 then check_room (v + 1)
          else
            let nb = ((k - 1) / block) + 1 in
            if byte_off.(v + 1) - byte_off.(v) < (8 * nb) + 1 then
              Error
                (Bad_offsets
                   { vertex = v; msg = "region too small for its skip table" })
            else check_room (v + 1)
      in
      let* () = check_room 0 in
      Ok
        { n; total; block; blob_len; ent_off; byte_off; buf;
          blob_base = 8 * header_words n; path; bytes; cache }

(* ---------------------------------------------------------------- *)
(* The clamped reader and the block-skipping two-pointer merge. All
   reads stay inside [rs, re) — bounds the shallow contract
   guarantees — so [unsafe_get] is sound on any validated image. *)

type cursor = {
  rs : int; (* region start, absolute byte index in [buf] *)
  re : int; (* region end *)
  k : int; (* entries in the hubset *)
  nb : int; (* blocks *)
  mutable base : int;
  mutable pos : int; (* next unread byte *)
  mutable i : int; (* index of the current entry *)
  mutable blk : int; (* block holding the current entry *)
  mutable bnd : int; (* entry index where the next block starts *)
  mutable nf : int; (* next block's first hub ([max_int] on the last
                       block) — cached so the merge's skip test is one
                       integer compare, not a skip-table load *)
  mutable h : int; (* current hub *)
  mutable d : int; (* current distance *)
}

(* clamped LEB128: never reads past [c.re] nor more than 10 bytes; on
   a truncated or hostile stream the value is garbage, which the
   shallow contract permits. Allocation-free (tail recursion instead
   of refs) with a straight-line fast path for the dominant 1-byte
   case — this is the innermost loop of every query. *)
let rec readv_slow (buf : buf) c x shift cnt =
  if c.pos >= c.re || cnt >= 10 then x
  else begin
    let b = Char.code (A1.unsafe_get buf c.pos) in
    c.pos <- c.pos + 1;
    let x = if shift <= 56 then x lor ((b land 0x7f) lsl shift) else x in
    if b < 0x80 then x else readv_slow buf c x (shift + 7) (cnt + 1)
  end

let readv (buf : buf) c =
  if c.pos >= c.re then 0
  else begin
    let b = Char.code (A1.unsafe_get buf c.pos) in
    c.pos <- c.pos + 1;
    if b < 0x80 then b else readv_slow buf c (b land 0x7f) 7 1
  end

let u32 (buf : buf) off =
  Char.code (A1.unsafe_get buf off)
  lor (Char.code (A1.unsafe_get buf (off + 1)) lsl 8)
  lor (Char.code (A1.unsafe_get buf (off + 2)) lsl 16)
  lor (Char.code (A1.unsafe_get buf (off + 3)) lsl 24)

let cursor t v ~k =
  let rs = t.blob_base + t.byte_off.(v) in
  let re = t.blob_base + t.byte_off.(v + 1) in
  let nb = ((k - 1) / t.block) + 1 in
  let c =
    { rs; re; k; nb; base = 0; pos = rs + (8 * nb); i = 0; blk = 0;
      bnd = t.block; nf = (if nb > 1 then u32 t.buf (rs + 8) else max_int);
      h = 0; d = 0 }
  in
  c.base <- readv t.buf c;
  c.h <- readv t.buf c;
  c.d <- c.base + unzig (readv t.buf c);
  c

let advance buf ~block c =
  (* move to the next entry; false when the hubset is exhausted *)
  c.i <- c.i + 1;
  if c.i >= c.k then false
  else begin
    (if c.i = c.bnd then begin
       (* a block boundary: its first entry is absolutely coded *)
       c.blk <- c.blk + 1;
       c.bnd <- c.bnd + block;
       c.nf <-
         (if c.blk + 1 < c.nb then u32 buf (c.rs + (8 * (c.blk + 1)))
          else max_int);
       c.h <- readv buf c;
       c.d <- c.base + unzig (readv buf c)
     end
     else begin
       let p = c.pos in
       if p + 1 < c.re then begin
         let b0 = Char.code (A1.unsafe_get buf p) in
         let b1 = Char.code (A1.unsafe_get buf (p + 1)) in
         if b0 lor b1 < 0x80 then begin
           (* dominant case: delta hub and zigzag distance are both
              single-byte — decode straight-line *)
           c.pos <- p + 2;
           c.h <- c.h + 1 + b0;
           c.d <- c.base + unzig b1
         end
         else begin
           c.h <- c.h + 1 + readv buf c;
           c.d <- c.base + unzig (readv buf c)
         end
       end
       else begin
         c.h <- c.h + 1 + readv buf c;
         c.d <- c.base + unzig (readv buf c)
       end
     end);
    true
  end

let skip buf ~block c ~target =
  (* leap to the last block whose skip-table first hub is <= target;
     true iff the cursor moved (strictly forward, so the merge always
     terminates). [c.nf] caches the next block's first hub, so the
     common no-skip case is one integer compare. Skip slots are in
     bounds by the shallow room check; a hostile byte offset is
     clamped to the region end. *)
  if target < c.nf then false
  else begin
    let b = ref (c.blk + 1) in
    while !b + 1 < c.nb && u32 buf (c.rs + (8 * (!b + 1))) <= target do incr b
    done;
    c.blk <- !b;
    c.bnd <- (!b + 1) * block;
    c.nf <-
      (if !b + 1 < c.nb then u32 buf (c.rs + (8 * (!b + 1))) else max_int);
    c.i <- !b * block;
    let o = u32 buf (c.rs + (8 * !b) + 4) in
    c.pos <- (if o > c.re - c.rs then c.re else c.rs + o);
    c.h <- readv buf c;
    c.d <- c.base + unzig (readv buf c);
    true
  end

(* The two-pointer merge, tail-recursive so [best] lives in a
   register and no ref cells are allocated. The skip test is inlined
   (one compare against the cached next-block first hub); [skip] is
   only called when it is guaranteed to move the cursor, so the merge
   still strictly advances on every step. *)
let rec merge buf block a b best =
  if a.h = b.h then begin
    let s = Dist.add a.d b.d in
    let best = if s < best then s else best in
    let ma = advance buf ~block a in
    if advance buf ~block b && ma then merge buf block a b best else best
  end
  else if a.h < b.h then
    if b.h < a.nf then
      if advance buf ~block a then merge buf block a b best else best
    else begin
      ignore (skip buf ~block a ~target:b.h);
      merge buf block a b best
    end
  else if a.h < b.nf then
    if advance buf ~block b then merge buf block a b best else best
  else begin
    ignore (skip buf ~block b ~target:a.h);
    merge buf block a b best
  end

let raw_query t u v =
  let eo = t.ent_off in
  let ku = Array.unsafe_get eo (u + 1) - Array.unsafe_get eo u
  and kv = Array.unsafe_get eo (v + 1) - Array.unsafe_get eo v in
  if ku = 0 || kv = 0 then Dist.inf
  else
    let a = cursor t u ~k:ku and b = cursor t v ~k:kv in
    merge t.buf t.block a b Dist.inf

(* ---------------------------------------------------------------- *)
(* Deep validation: a strict decode of every region — minimal varints
   only, skip table checked against the actual layout, the full
   per-entry contract of Flat_hub.of_raw, and exact consumption. *)

let strict_varint buf ~re ~vertex ~entry pos =
  let fail msg = raise (Bad (Bad_entry { vertex; entry; msg })) in
  let x = ref 0 and shift = ref 0 and cnt = ref 0 in
  let last = ref 0 and fin = ref false in
  while not !fin do
    if !pos >= re then fail "truncated varint";
    if !cnt >= 9 then fail "varint overflows a native int";
    let b = Char.code (A1.get buf !pos) in
    incr pos;
    incr cnt;
    last := b;
    x := !x lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    if b < 0x80 then fin := true
  done;
  if !cnt > 1 && !last = 0 then fail "overlong varint";
  !x

let validate_entries t =
  try
    for v = 0 to t.n - 1 do
      let rs = t.blob_base + t.byte_off.(v) in
      let re = t.blob_base + t.byte_off.(v + 1) in
      let k = t.ent_off.(v + 1) - t.ent_off.(v) in
      let fail entry msg = raise (Bad (Bad_entry { vertex = v; entry; msg })) in
      if k = 0 then begin
        if re <> rs then fail 0 "empty hubset with a non-empty region"
      end
      else begin
        let nb = ((k - 1) / t.block) + 1 in
        let pos = ref (rs + (8 * nb)) in
        let base = strict_varint t.buf ~re ~vertex:v ~entry:0 pos in
        if base < 0 then fail 0 "negative distance base";
        let prev = ref (-1) in
        for i = 0 to k - 1 do
          let h =
            if i mod t.block = 0 then begin
              let b = i / t.block in
              if u32 t.buf (rs + (8 * b) + 4) <> !pos - rs then
                fail i "skip-table byte offset mismatch";
              let h = strict_varint t.buf ~re ~vertex:v ~entry:i pos in
              if u32 t.buf (rs + (8 * b)) <> h then
                fail i "skip-table first hub mismatch";
              h
            end
            else !prev + 1 + strict_varint t.buf ~re ~vertex:v ~entry:i pos
          in
          if h < 0 || h >= t.n then fail i "hub out of range";
          if h <= !prev then fail i "hubs must be strictly increasing";
          prev := h;
          let z = strict_varint t.buf ~re ~vertex:v ~entry:i pos in
          let d = base + unzig z in
          if d < 0 then fail i "bad distance"
        done;
        if !pos <> re then fail k "trailing bytes in vertex region"
      end
    done;
    Ok ()
  with Bad e -> Error e

(* ---------------------------------------------------------------- *)
(* Loading. *)

let finish_load ~what ~path res ~deep =
  let ( let* ) = Result.bind in
  let res =
    let* t = res in
    let* () = if deep then validate_entries t else Ok () in
    Ok t
  in
  (match res with
  | Ok _ -> ()
  | Error e ->
      Repro_obs.Events.emit_ambient ~level:Repro_obs.Events.Warn
        (what ^ ".load_failure")
        [ ("path", Repro_obs.Events.Str path);
          ("msg", Repro_obs.Events.Str (error_to_string e)) ]);
  res

let of_bytes_res ?(cache_slots = 0) ?(deep = false) s =
  let cache = make_cache cache_slots in
  Repro_obs.Span.run ~name:"compact-hub.parse" (fun () ->
      let bytes = String.length s in
      Repro_obs.Span.count "bytes" bytes;
      let buf =
        A1.init Bigarray.char Bigarray.c_layout bytes (String.unsafe_get s)
      in
      finish_load ~what:"compact_hub" ~path:"<bytes>"
        (validate ~path:"" ~bytes buf ~cache)
        ~deep)

(* open → fstat → map → close, every failure mode funnelled into a
   typed error; the fd is closed on all paths (the mapping survives). *)
let open_and_map path =
  match Unix.openfile path [ Unix.O_RDONLY; Unix.O_CLOEXEC ] 0 with
  | exception Unix.Unix_error (err, _, _) ->
      Error (Io (path ^ ": " ^ Unix.error_message err))
  | fd ->
      let close () = try Unix.close fd with Unix.Unix_error _ -> () in
      let finish r = close (); r in
      (match Unix.fstat fd with
      | exception Unix.Unix_error (err, _, _) ->
          finish (Error (Io (path ^ ": fstat: " ^ Unix.error_message err)))
      | st ->
          if st.Unix.st_kind <> Unix.S_REG then finish (Error (Not_regular path))
          else
            let bytes = st.Unix.st_size in
            if bytes < min_bytes then finish (Error (Too_short { bytes }))
            else
              match
                Bigarray.array1_of_genarray
                  (Unix.map_file fd Bigarray.char Bigarray.c_layout false
                     [| bytes |])
              with
              | buf -> finish (Ok (buf, bytes))
              | exception Unix.Unix_error (err, _, _) ->
                  finish (Error (Io (path ^ ": map: " ^ Unix.error_message err)))
              | exception Sys_error msg -> finish (Error (Io msg)))

let load_res ?(cache_slots = 0) ?(deep = false) path =
  let cache = make_cache cache_slots in
  Repro_obs.Span.run ~name:"compact-hub.load" (fun () ->
      let ( let* ) = Result.bind in
      finish_load ~what:"compact_hub" ~path
        (let* buf, bytes = open_and_map path in
         Repro_obs.Span.count "bytes" bytes;
         validate ~path ~bytes buf ~cache)
        ~deep)

(* ---------------------------------------------------------------- *)
(* Accessors and the public query surface. *)

let with_cache ~cache_slots t = { t with cache = make_cache cache_slots }
let n t = t.n
let total_size t = t.total
let block t = t.block
let path t = t.path
let bytes t = t.bytes

let bits_per_entry t =
  if t.total = 0 then 0.
  else 8. *. float_of_int t.bytes /. float_of_int t.total

let size t v =
  if v < 0 || v >= t.n then invalid_arg "Compact_hub.size";
  t.ent_off.(v + 1) - t.ent_off.(v)

let hubs t v =
  if v < 0 || v >= t.n then invalid_arg "Compact_hub.hubs";
  let k = t.ent_off.(v + 1) - t.ent_off.(v) in
  if k = 0 then [||]
  else begin
    let c = cursor t v ~k in
    let out = Array.make k (0, 0) in
    out.(0) <- (c.h, c.d);
    for i = 1 to k - 1 do
      ignore (advance t.buf ~block:t.block c);
      out.(i) <- (c.h, c.d)
    done;
    out
  end

let to_flat t =
  let offsets = Array.copy t.ent_off in
  let data = Array.make (2 * t.total) 0 in
  for v = 0 to t.n - 1 do
    let lo = t.ent_off.(v) in
    Array.iteri
      (fun i (h, d) ->
        data.(2 * (lo + i)) <- h;
        data.((2 * (lo + i)) + 1) <- d)
      (hubs t v)
  done;
  Flat_hub.of_raw ~n:t.n ~offsets ~data

let cached_query t c u v =
  let key = if u <= v then (u * t.n) + v else (v * t.n) + u in
  let slot = key mod c.slots in
  if Array.unsafe_get c.keys slot = key then begin
    c.hits <- c.hits + 1;
    Array.unsafe_get c.values slot
  end
  else begin
    c.misses <- c.misses + 1;
    let d = raw_query t u v in
    Array.unsafe_set c.keys slot key;
    Array.unsafe_set c.values slot d;
    d
  end

let dispatch t u v =
  match t.cache with None -> raw_query t u v | Some c -> cached_query t c u v

let query t u v =
  if u < 0 || u >= t.n || v < 0 || v >= t.n then invalid_arg "Compact_hub.query";
  dispatch t u v

let query_many ?pool t pairs =
  Array.iter
    (fun (u, v) ->
      if u < 0 || u >= t.n || v < 0 || v >= t.n then
        invalid_arg "Compact_hub.query_many")
    pairs;
  let m = Array.length pairs in
  let out = Array.make m 0 in
  (match t.cache with
  | Some c ->
      (* same contract as Flat_hub.query_many: the direct-mapped cache
         is not domain-safe, so cached batches stay on the calling
         domain with hit/miss merged once at the end *)
      let hits = ref 0 and misses = ref 0 in
      for k = 0 to m - 1 do
        let u, v = Array.unsafe_get pairs k in
        let key = if u <= v then (u * t.n) + v else (v * t.n) + u in
        let slot = key mod c.slots in
        let d =
          if Array.unsafe_get c.keys slot = key then begin
            incr hits;
            Array.unsafe_get c.values slot
          end
          else begin
            incr misses;
            let d = raw_query t u v in
            Array.unsafe_set c.keys slot key;
            Array.unsafe_set c.values slot d;
            d
          end
        in
        Array.unsafe_set out k d
      done;
      c.hits <- c.hits + !hits;
      c.misses <- c.misses + !misses
  | None ->
      (* the blob is read-only: fan the batch out *)
      let pool =
        match pool with Some p -> p | None -> Repro_par.Pool.default ()
      in
      Repro_par.Pool.parallel_for pool ~n:m (fun ~slot:_ lo hi ->
          for k = lo to hi - 1 do
            let u, v = Array.unsafe_get pairs k in
            Array.unsafe_set out k (raw_query t u v)
          done));
  out

let cache_stats t =
  match t.cache with None -> None | Some c -> Some (c.hits, c.misses)

let space_words t = (2 * (t.n + 1)) + ((t.blob_len + 7) / 8)

let pp ppf t =
  Format.fprintf ppf "compact_hub(%s, n=%d, total=%d, block=%d, %dB, cache=%s)"
    (if t.path = "" then "<bytes>" else t.path)
    t.n t.total t.block t.bytes
    (match t.cache with
    | None -> "none"
    | Some c -> string_of_int c.slots ^ " slots")

let backend_name = "compact-hub-labeling"

let backend t =
  let detailed u v =
    if u < 0 || u >= t.n || v < 0 || v >= t.n then
      invalid_arg "Compact_hub.query";
    match t.cache with
    | None ->
        let d = raw_query t u v in
        ( d,
          Repro_obs.Trace.make
            ~entries_scanned:(size t u + size t v)
            ~source:backend_name ~u ~v ~dist:d () )
    | Some c ->
        let hits0 = c.hits in
        let d = cached_query t c u v in
        let cache =
          if c.hits > hits0 then Repro_obs.Trace.Hit else Repro_obs.Trace.Miss
        in
        let scanned =
          match cache with
          | Repro_obs.Trace.Hit -> 0
          | _ -> size t u + size t v
        in
        ( d,
          Repro_obs.Trace.make ~entries_scanned:scanned ~cache
            ~source:backend_name ~u ~v ~dist:d () )
  in
  Repro_obs.Backend.make ~name:backend_name ~space_words:(space_words t)
    ~detailed (query t)

let ops ?pool t =
  let module Base = (val backend t : Repro_obs.Backend.S) in
  let q = query t and h = hubs t and nn = t.n in
  let idx = lazy (Hub_index.build ~n:nn ~hubs:h) in
  let module B = struct
    include Base

    let op req =
      match req with
      | Repro_obs.Ops.Dist _ | Repro_obs.Ops.Batch _ ->
          (* point queries decode straight off the blob and never
             force the inverted index *)
          Repro_obs.Ops.brute ~n:nn ~query:q req
      | _ -> Hub_index.eval ?pool (Lazy.force idx) ~hubs:h ~query:q req
  end in
  (module B : Repro_obs.Backend.S_ops)
