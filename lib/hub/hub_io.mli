(** Plain-text serialisation of hub labelings.

    Format: header ["n total"], then one line per vertex:
    ["v k h1 d1 h2 d2 ..."]. Lossless. Blank lines and [#]-comments
    are ignored.

    {!of_string_res} is the validated entry point of the serving
    layer: it rejects out-of-range vertex/hub ids, negative distances,
    duplicate vertex lines, and count mismatches against the header,
    reporting the offending input line. *)

type parse_error = Repro_graph.Graph_io.parse_error = {
  line : int;
  msg : string;
}

val to_string : Hub_label.t -> string

val of_string_res : string -> (Hub_label.t, parse_error) result

val of_string : string -> Hub_label.t
(** @raise Invalid_argument on malformed input. *)
