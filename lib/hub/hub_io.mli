(** Plain-text serialisation of hub labelings.

    Format: header ["n total"], then one line per vertex:
    ["v k h1 d1 h2 d2 ..."]. Lossless. Blank lines and [#]-comments
    are ignored.

    {!of_string_res} is the canonical (and only) entry point: it
    rejects out-of-range vertex/hub ids, negative distances, duplicate
    vertex lines, and count mismatches against the header, reporting
    the offending input line. The raising shims of early revisions are
    gone — match on the [result]. *)

type parse_error = Repro_graph.Graph_io.parse_error = {
  line : int;
  msg : string;
}

val to_string : Hub_label.t -> string

val of_string_res : string -> (Hub_label.t, parse_error) result

(** {1 Binary packed form}

    Serialisation of {!Flat_hub.t}: an 8-byte magic ["HUBFLAT1"]
    followed by little-endian 64-bit words — [n], the total entry
    count, the [n+1] CSR offsets and the [2*total] interleaved
    [(hub, dist)] words. The encoding is canonical, so
    save → load → save round-trips byte-for-byte. *)

val packed_magic : string
(** The 8-byte magic ["HUBFLAT1"] that opens every packed file (also
    the first word of the {!Mmap_hub} view). *)

val is_packed : string -> bool
(** Whether the string starts with the packed-form magic (used to
    auto-detect binary label files). *)

val flat_to_bytes : Flat_hub.t -> string

val flat_of_bytes_res : string -> (Flat_hub.t, parse_error) result
(** Validated load; rejects bad magic, truncation, length/header
    mismatches and every CSR violation {!Flat_hub.of_raw} rejects. For
    this binary format the [line] field carries the byte offset of the
    offending word. *)

(** {1 Compressed packed form}

    The [HUBFLAT2] encoding of {!Compact_hub}: delta-varint hub ids,
    zigzag-varint distances against a per-vertex base, block skip
    tables (see that module for the layout). Also canonical, so
    save → load → save round-trips byte-for-byte. *)

val compact_magic : string
(** The 8-byte magic ["HUBFLAT2"] that opens every compressed file. *)

val is_compact : string -> bool
(** Whether the string starts with the compressed-form magic (used to
    auto-detect binary label files next to {!is_packed}). *)

val compact_to_bytes : ?block:int -> Flat_hub.t -> string
(** {!Compact_hub.to_bytes} under the IO spans. *)

val compact_of_bytes_res : string -> (Compact_hub.t, parse_error) result
(** Deep-validated heap decode ({!Compact_hub.of_bytes_res}
    [~deep:true] — the parse mirror of {!flat_of_bytes_res}'s full
    validation), with the typed {!Compact_hub.error} rendered into the
    uniform [parse_error]. *)
