open Repro_graph
module Ops = Repro_obs.Ops

type t = {
  n : int;
  offsets : int array; (* length n + 1; hub h's entries at offsets.(h) .. *)
  verts : int array; (* entry vertex, ascending within a hub *)
  dists : int array; (* distance from the entry vertex to the hub *)
}

let build ~n ~hubs =
  Repro_obs.Span.run ~name:"hub-index.build" (fun () ->
      if n < 0 then invalid_arg "Hub_index.build: negative n";
      let offsets = Array.make (n + 1) 0 in
      let check_hub h =
        if h < 0 || h >= n then invalid_arg "Hub_index.build: hub out of range"
      in
      for v = 0 to n - 1 do
        Array.iter
          (fun (h, _) ->
            check_hub h;
            offsets.(h + 1) <- offsets.(h + 1) + 1)
          (hubs v)
      done;
      for h = 1 to n do
        offsets.(h) <- offsets.(h) + offsets.(h - 1)
      done;
      let total = offsets.(n) in
      let next = Array.sub offsets 0 (max 1 n) in
      let verts = Array.make total 0 and dists = Array.make total 0 in
      (* vertices are visited in ascending order, so each hub's run is
         filled ascending — the deterministic scan order of [row] *)
      for v = 0 to n - 1 do
        Array.iter
          (fun (h, d) ->
            let e = next.(h) in
            verts.(e) <- v;
            dists.(e) <- d;
            next.(h) <- e + 1)
          (hubs v)
      done;
      Repro_obs.Span.count "entries" total;
      { n; offsets; verts; dists })

let n t = t.n
let total_size t = t.offsets.(t.n)

let space_words t =
  Array.length t.offsets + Array.length t.verts + Array.length t.dists

let row t s_hubs =
  let out = Array.make t.n Dist.inf in
  Array.iter
    (fun (h, d_sh) ->
      if h < 0 || h >= t.n then invalid_arg "Hub_index.row: hub out of range";
      for e = t.offsets.(h) to t.offsets.(h + 1) - 1 do
        let w = Array.unsafe_get t.verts e in
        let d = Dist.add d_sh (Array.unsafe_get t.dists e) in
        if d < Array.unsafe_get out w then Array.unsafe_set out w d
      done)
    s_hubs;
  out

(* Independent per-index work fanned out across the pool; writes are
   per-index only, so results are byte-identical for any job count. *)
let fan pool ~m f =
  Repro_par.Pool.parallel_for pool ~n:m (fun ~slot:_ lo hi ->
      for i = lo to hi - 1 do
        f i
      done)

let eval ?pool t ~hubs ~query req =
  (match Ops.validate ~n:t.n req with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Hub_index.eval: " ^ msg));
  let pool_of () =
    match pool with Some p -> p | None -> Repro_par.Pool.default ()
  in
  let ecc_of v =
    match Ops.farthest_of (Ops.row_pairs (row t (hubs v))) with
    | Some (_, d) -> d
    | None -> 0
  in
  match req with
  | Ops.Dist { u; v } -> Ops.R_dist (query u v)
  | Ops.Batch pairs -> Ops.R_dists (Array.map (fun (u, v) -> query u v) pairs)
  | Ops.One_to_many { source; targets } ->
      let r = row t (hubs source) in
      Ops.R_dists (Array.map (fun w -> r.(w)) targets)
  | Ops.Many_to_many { sources; targets } ->
      let out = Array.make (Array.length sources) [||] in
      fan (pool_of ()) ~m:(Array.length sources) (fun i ->
          let r = row t (hubs sources.(i)) in
          out.(i) <- Array.map (fun w -> r.(w)) targets);
      Ops.R_matrix out
  | Ops.Top_k_nearest { source; k } ->
      Ops.R_nearest (Ops.k_nearest ~k (Ops.row_pairs (row t (hubs source))))
  | Ops.Eccentricity v -> Ops.R_ecc (ecc_of v)
  | Ops.Farthest v -> (
      match Ops.farthest_of (Ops.row_pairs (row t (hubs v))) with
      | Some (vertex, dist) -> Ops.R_farthest { vertex; dist }
      | None -> Ops.R_farthest { vertex = v; dist = 0 })
  | Ops.Diameter_radius ->
      if t.n = 0 then Ops.R_diam_rad { diameter = 0; radius = 0 }
      else begin
        let ecc = Array.make t.n 0 in
        fan (pool_of ()) ~m:t.n (fun v -> ecc.(v) <- ecc_of v);
        let dia = ref 0 and rad = ref max_int in
        Array.iter
          (fun e ->
            if e > !dia then dia := e;
            if e < !rad then rad := e)
          ecc;
        Ops.R_diam_rad { diameter = !dia; radius = !rad }
      end
