(** Hub labelings (2-hop covers) [CHKZ03].

    A labeling assigns to each vertex [v] a hubset [S(v)] of pairs
    [(hub, dist(v, hub))]; the distance query [u v] returns
    [min over w ∈ S(u) ∩ S(v) of dist(u,w) + dist(w,v)]
    (Introduction, first display). The labeling is exact for a graph
    when this equals the graph distance for every pair — see
    {!Cover.verify}. *)


type t

val make : n:int -> (int * int) list array -> t
(** [make ~n per_vertex] builds a labeling from hub/distance pairs.
    Pairs are sorted by hub; a duplicate hub with differing distances
    raises, equal duplicates are merged.
    @raise Invalid_argument on out-of-range hubs or negative distance. *)

val of_arrays : n:int -> (int * int) array array -> t

val n : t -> int

val hubs : t -> int -> (int * int) array
(** The hubset of a vertex, sorted by hub id (not a copy — do not
    mutate). *)

val hub_list : t -> int -> (int * int) list

val mem : t -> int -> hub:int -> bool

val dist_to_hub : t -> int -> hub:int -> int option

val query : t -> int -> int -> int
(** Sorted-merge intersection of the two hubsets; {!Dist.inf} when the
    hubsets are disjoint. *)

val query_meet : t -> int -> int -> (int * int) option
(** Like {!query} but also returns the optimal meeting hub. [None] when
    the hubsets are disjoint. *)

val size : t -> int -> int
(** Hubset size of a vertex. *)

val total_size : t -> int
val avg_size : t -> float
val max_size : t -> int

val map_union : t -> t -> t
(** Pointwise union of hubsets (same [n]); distances must agree on
    common hubs.
    @raise Invalid_argument on mismatch. *)

val add_self : t -> t
(** Ensure [(v, 0) ∈ S(v)] for every vertex. *)

val restrict : t -> keep:(int -> int -> bool) -> t
(** [restrict t ~keep] drops the pairs [(hub, d)] of vertex [v] for
    which [keep v hub] is false. *)

val pp : Format.formatter -> t -> unit

val backend : t -> Repro_obs.Backend.t
(** The labeling as a uniform serving backend (name ["hub-labeling"],
    space = two words per stored pair). Traces report
    [|S(u)| + |S(v)|] as [entries_scanned]. *)
