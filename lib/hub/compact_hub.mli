(** Compressed hub-label store — the [HUBFLAT2] byte layout.

    {!Flat_hub} and {!Mmap_hub} spend two 64-bit words per label entry,
    ~8x the information content of a sparse-graph labeling whose hub
    ids are sorted (deltas are small) and whose distances cluster
    around a per-vertex minimum. This module packs the same CSR store
    into a byte blob:

    - hub ids are {e delta-encoded} within each vertex (strictly
      increasing order makes every delta [>= 1], so [delta - 1] is
      stored) and LEB128-{e varint}-packed;
    - distances are encoded as {e zigzag varints} of [d - base], where
      [base] is the vertex's minimum stored distance;
    - entries are grouped into fixed-size {e blocks} of [block]
      entries. Each block opens with an absolutely-coded entry, so a
      per-vertex {e skip table} (first hub id + byte offset per block,
      two little-endian [uint32]s) lets the two-pointer merge leap over
      whole blocks without decoding them;
    - a word-aligned header keeps {e two} CSR tables — entry-index
      offsets and byte offsets into the blob — so vertex seek, [size]
      and [total_size] stay O(1).

    Like {!Mmap_hub}, the store opens either from heap bytes
    ({!of_bytes_res}) or zero-copy via [Unix.map_file]
    ({!load_res}), and validation is total and typed: the default
    shallow pass is O(n) (header, both offset tables, and the
    per-vertex skip-table room check that bounds every fixed-position
    read), after which the query path is memory-safe on {e any} input
    — a corrupt blob can only yield wrong distances, never a crash or
    out-of-bounds access. [~deep:true] (or {!validate_entries})
    decodes every entry with strict varints (minimal encodings only,
    [<= 9] bytes), checks the skip table against the actual block
    layout, and restores the exact per-entry guarantees of
    {!Flat_hub.of_raw}.

    The encoder is canonical: [to_bytes] of a given store is a single
    deterministic byte string, so save → load → save round-trips
    byte-for-byte (pinned by a golden sha256 in the test suite). *)

type t

type error =
  | Io of string  (** open/stat/map failed (missing file, EACCES, ...) *)
  | Not_regular of string  (** not a regular file (directory, device, socket) *)
  | Too_short of { bytes : int }  (** smaller than magic + header *)
  | Misaligned of { bytes : int }  (** size not a whole number of 8-byte words *)
  | Bad_magic  (** first 8 bytes are not ["HUBFLAT2"] *)
  | Bad_header of { word : int; msg : string }
      (** [n]/[total]/[block]/[blob_len] negative, overflowing a native
          int, [block < 1] or [n >= 2^31]; [word] is the byte offset of
          the offending word *)
  | Length_mismatch of { expected_words : int; actual_words : int }
      (** file length disagrees with the header *)
  | Bad_offsets of { vertex : int; msg : string }
      (** an offset table not monotone, or a vertex region too small
          for its skip table *)
  | Bad_entry of { vertex : int; entry : int; msg : string }
      (** deep scan only: hostile varint (truncated, overlong, or
          overflowing a native int), hub out of range / unsorted,
          negative distance, skip-table mismatch, or trailing bytes *)

val error_to_string : error -> string

val magic : string
(** The 8-byte magic ["HUBFLAT2"] that opens every compact file. *)

val default_block : int
(** Entries per block used by {!to_bytes} unless overridden (32). *)

val to_bytes : ?block:int -> Flat_hub.t -> string
(** Canonical encoding of a flat store.
    @raise Invalid_argument if [block < 1], [n >= 2^31], or a single
    vertex region would exceed the skip table's [uint32] byte range. *)

val of_bytes_res : ?cache_slots:int -> ?deep:bool -> string -> (t, error) result
(** Heap decoder: validate an in-memory [HUBFLAT2] image (shallow by
    default, see the module preamble) and take a private copy of the
    bytes. Never raises on malformed input.
    @raise Invalid_argument if [cache_slots < 0]. *)

val load_res : ?cache_slots:int -> ?deep:bool -> string -> (t, error) result
(** Zero-copy open: map the file read-only via [Unix.map_file] and
    validate in place — cold start is O(n) in the label size, entry
    bytes are demand-faulted and shared across processes through the
    page cache. The fd is closed before returning on every path (the
    mapping survives the close); unlinking after a successful load is
    safe.
    @raise Invalid_argument if [cache_slots < 0]. *)

val validate_entries : t -> (unit, error) result
(** The O(total) strict decode of [~deep:true], runnable after the
    fact. *)

val with_cache : cache_slots:int -> t -> t
(** The same store with a fresh direct-mapped cache ([0] removes it).
    @raise Invalid_argument if [cache_slots < 0]. *)

val n : t -> int
val total_size : t -> int

val block : t -> int
(** Entries per block of this file's layout. *)

val size : t -> int -> int
(** Hubset size of a vertex — O(1) from the entry-offset table.
    @raise Invalid_argument on an out-of-range vertex. *)

val hubs : t -> int -> (int * int) array
(** The hubset of a vertex as fresh [(hub, dist)] pairs, decoded via
    the same clamped reader as the query path (tests and debugging, not
    the hot path).
    @raise Invalid_argument on an out-of-range vertex. *)

val path : t -> string
(** The file this store was mapped from; [""] for a store decoded from
    in-memory bytes. *)

val bytes : t -> int
(** Size in bytes of the full encoded image (header + blob + pad). *)

val bits_per_entry : t -> float
(** Measured storage cost: [8 * bytes / total_size] — the whole-file
    bits amortised per label entry ([0.] when the store is empty).
    This is the paper's label-size axis as actually paid on disk. *)

val to_flat : t -> Flat_hub.t
(** Materialise into a heap {!Flat_hub.t} (re-validating every entry
    via {!Flat_hub.of_raw}).
    @raise Invalid_argument if the decoded entries are malformed — a
    shallow-loaded store can hold a garbage blob. *)

val query : t -> int -> int -> int
(** Two-pointer merge over the two decoded streams, leaping over
    blocks whose skip-table first hub shows they cannot intersect;
    {!Repro_graph.Dist.inf} when the hubsets are disjoint. Consults and
    fills the cache when one was configured.
    @raise Invalid_argument on out-of-range endpoints. *)

val query_many : ?pool:Repro_par.Pool.t -> t -> (int * int) array -> int array
(** Batched queries with the same contract as {!Flat_hub.query_many}:
    equals the query loop for any job count; cache-free stores fan out
    across the pool (the blob is read-only), cached stores stay on the
    calling domain and merge hit/miss counts once per batch.
    @raise Invalid_argument if any endpoint is out of range. *)

val cache_stats : t -> (int * int) option
(** [Some (hits, misses)] for a cached store, [None] otherwise. *)

val space_words : t -> int
(** Words of the compact structure: the two heap offset tables
    ([2 * (n + 1)]) plus the blob rounded up to words — compare with
    {!Flat_hub.space_words}'s [(n + 1) + 2 * total]. *)

val pp : Format.formatter -> t -> unit

val backend : t -> Repro_obs.Backend.t
(** The store as a uniform serving backend (name
    ["compact-hub-labeling"]). Traces mirror {!Flat_hub.backend}:
    [entries_scanned = |S(u)| + |S(v)|], cache hit/miss flags on a
    cached store with [entries_scanned = 0] on a hit. *)

val ops : ?pool:Repro_par.Pool.t -> t -> Repro_obs.Backend.ops
(** The store as an ops backend, mirroring {!Flat_hub.ops}: [Dist] /
    [Batch] decode straight off the blob; aggregates run over a lazily
    built shared {!Hub_index} (heap-resident, paid only when an
    aggregate is first asked for). Byte-identical answers for any job
    count. *)
