(** All-pairs shortest paths, as a distance matrix.

    Memory is Θ(n²) ints; intended for the verification and experiment
    scales of this repository (n up to a few tens of thousands for
    unweighted BFS-based APSP). *)

type t

val of_graph : ?pool:Repro_par.Pool.t -> Graph.t -> t
(** BFS from every vertex, parallel across sources ({!Traversal.bfs_rows}). *)

val of_wgraph : ?pool:Repro_par.Pool.t -> Wgraph.t -> t
(** Dijkstra from every vertex, parallel across sources
    ({!Dijkstra.distance_rows}). *)

val n : t -> int

val dist : t -> int -> int -> int
(** Distance, {!Dist.inf} if unreachable. *)

val row : t -> int -> int array
(** The distance array from one source (not a copy — do not mutate). *)

val max_finite : t -> int
(** Largest finite entry (the diameter for connected graphs). *)

val check_triangle_inequality : t -> bool
(** Exhaustive check of [d(u,w) <= d(u,v) + d(v,w)] with saturating
    arithmetic; used by tests. O(n³). *)
