type result = { dist : int array; parent : int array }

let shortest_paths g s =
  let n = Wgraph.n g in
  if s < 0 || s >= n then invalid_arg "Dijkstra.shortest_paths";
  let dist = Array.make n Dist.inf in
  let parent = Array.make n (-1) in
  let pq = Pqueue.create n in
  dist.(s) <- 0;
  Pqueue.insert pq s 0;
  while not (Pqueue.is_empty pq) do
    let u, du = Pqueue.pop_min pq in
    Wgraph.iter_neighbors g u (fun v w ->
        let d = du + w in
        if d < dist.(v) then begin
          dist.(v) <- d;
          parent.(v) <- u;
          Pqueue.insert_or_decrease pq v d
        end)
  done;
  { dist; parent }

let distances g s = (shortest_paths g s).dist

(* Distances over a caller-supplied queue; [pq] must be empty (a fully
   drained queue is — popping restores the free state) and sized for
   [Wgraph.n g]. Lets row sweeps reuse one queue per domain. *)
let distances_with ~pq g s =
  let n = Wgraph.n g in
  let dist = Array.make n Dist.inf in
  dist.(s) <- 0;
  Pqueue.insert pq s 0;
  while not (Pqueue.is_empty pq) do
    let u, du = Pqueue.pop_min pq in
    Wgraph.iter_neighbors g u (fun v w ->
        let d = du + w in
        if d < dist.(v) then begin
          dist.(v) <- d;
          Pqueue.insert_or_decrease pq v d
        end)
  done;
  dist

let distance_rows ?pool g =
  let n = Wgraph.n g in
  let rows = Array.make n [||] in
  let pool = match pool with Some p -> p | None -> Repro_par.Pool.default () in
  let queues =
    Array.init (Repro_par.Pool.jobs pool) (fun _ -> Pqueue.create n)
  in
  Repro_par.Pool.parallel_for pool ~n (fun ~slot lo hi ->
      let pq = queues.(slot) in
      for s = lo to hi - 1 do
        rows.(s) <- distances_with ~pq g s
      done);
  rows

let has_zero_weight g =
  List.exists (fun (_, _, w) -> w = 0) (Wgraph.edges g)

let count_shortest_paths g s =
  if has_zero_weight g then
    invalid_arg "Dijkstra.count_shortest_paths: zero-weight edge";
  let { dist; _ } = shortest_paths g s in
  let n = Wgraph.n g in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare dist.(a) dist.(b)) order;
  let num = Array.make n 0 in
  num.(s) <- 1;
  Array.iter
    (fun v ->
      if Dist.is_finite dist.(v) && v <> s then
        Wgraph.iter_neighbors g v (fun u w ->
            if Dist.is_finite dist.(u) && dist.(u) + w = dist.(v) then
              num.(v) <-
                (if num.(v) >= Traversal.path_count_cap - num.(u) then
                   Traversal.path_count_cap
                 else num.(v) + num.(u))))
    order;
  num

let unique_shortest_path g u v =
  let num = count_shortest_paths g u in
  num.(v) = 1

let distance g u v =
  let d = distances g u in
  d.(v)
