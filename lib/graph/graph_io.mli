(** Plain-text graph serialisation.

    The format is one header line ["n m"] followed by [m] lines
    ["u v"] (or ["u v w"] in the weighted variant), 0-indexed. Blank
    lines and [#]-comments are ignored.

    The [_res] parsers are the canonical, Result-first entry points:
    they reject out-of-range endpoints, self loops, duplicate edges
    and negative weights, and report the offending input line. New
    code should match on the [result]; the raising
    [of_string]/[wgraph_of_string] wrappers are deprecated thin shims
    kept for old call sites and throwaway scripts. *)

type parse_error = { line : int; msg : string }
(** [line] is 1-based in the raw input (blank and comment lines
    counted); [0] when no single line is to blame. *)

val string_of_parse_error : parse_error -> string
val pp_parse_error : Format.formatter -> parse_error -> unit

val to_string : Graph.t -> string

val of_string_res : string -> (Graph.t, parse_error) result
(** Validated parse: every endpoint must lie in [0 .. n-1], edges must
    be simple and distinct, and the edge count must match the header. *)

val of_string : string -> Graph.t
  [@@ocaml.deprecated "use of_string_res and match on the result"]
(** Raising shim over {!of_string_res}.
    @raise Invalid_argument on malformed input.
    @deprecated Use {!of_string_res}. *)

val wgraph_to_string : Wgraph.t -> string

val wgraph_of_string_res : string -> (Wgraph.t, parse_error) result
(** As {!of_string_res}, additionally rejecting negative weights. *)

val wgraph_of_string : string -> Wgraph.t
  [@@ocaml.deprecated "use wgraph_of_string_res and match on the result"]
(** Raising shim over {!wgraph_of_string_res}.
    @raise Invalid_argument on malformed input.
    @deprecated Use {!wgraph_of_string_res}. *)

val to_dot : ?name:string -> Graph.t -> string
(** Graphviz rendering, for small illustrative instances. *)
