(** Plain-text graph serialisation.

    The format is one header line ["n m"] followed by [m] lines
    ["u v"] (or ["u v w"] in the weighted variant), 0-indexed. Blank
    lines and [#]-comments are ignored.

    The [_res] parsers are the canonical (and only) entry points:
    they reject out-of-range endpoints, self loops, duplicate edges
    and negative weights, and report the offending input line. The
    raising [of_string]/[wgraph_of_string] shims of early revisions
    are gone — match on the [result]. *)

type parse_error = { line : int; msg : string }
(** [line] is 1-based in the raw input (blank and comment lines
    counted); [0] when no single line is to blame. *)

val string_of_parse_error : parse_error -> string
val pp_parse_error : Format.formatter -> parse_error -> unit

val to_string : Graph.t -> string

val of_string_res : string -> (Graph.t, parse_error) result
(** Validated parse: every endpoint must lie in [0 .. n-1], edges must
    be simple and distinct, and the edge count must match the header. *)

val wgraph_to_string : Wgraph.t -> string

val wgraph_of_string_res : string -> (Wgraph.t, parse_error) result
(** As {!of_string_res}, additionally rejecting negative weights. *)

val to_dot : ?name:string -> Graph.t -> string
(** Graphviz rendering, for small illustrative instances. *)
