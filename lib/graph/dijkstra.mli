(** Single-source shortest paths on weighted graphs.

    Zero-weight edges are allowed (needed by the vertex-subdivision
    reduction of Theorem 1.4); distances remain correct because weights
    are non-negative. Shortest-path *counting* however requires strictly
    positive weights — see {!count_shortest_paths}. *)

type result = {
  dist : int array;  (** distance from the source, {!Dist.inf} if unreachable *)
  parent : int array;  (** a shortest-path-tree parent, [-1] otherwise *)
}

val shortest_paths : Wgraph.t -> int -> result

val distances : Wgraph.t -> int -> int array

val distance_rows : ?pool:Repro_par.Pool.t -> Wgraph.t -> int array array
(** Dijkstra from every vertex, fanned out across the pool (default
    {!Repro_par.Pool.default}) with one priority queue of scratch per
    domain. Row [s] equals [distances g s]; the result is identical for
    any job count. *)

val count_shortest_paths : Wgraph.t -> int -> int array
(** [count_shortest_paths g s] counts, for every vertex, the number of
    distinct shortest paths from [s] (saturated at
    {!Traversal.path_count_cap}). Counting proceeds over the
    shortest-path DAG in order of distance, which is only sound without
    zero-weight edges.
    @raise Invalid_argument if [g] has a zero-weight edge. *)

val unique_shortest_path : Wgraph.t -> int -> int -> bool
(** [unique_shortest_path g u v] is [true] iff [v] is reachable from [u]
    by exactly one shortest path. Requires positive weights. *)

val distance : Wgraph.t -> int -> int -> int
(** Point-to-point distance (full Dijkstra from the source). *)
