(** Breadth-first and depth-first traversals of unweighted graphs.

    All distance arrays use the {!Dist.inf} sentinel for unreachable
    vertices. *)

type bfs_result = {
  dist : int array;  (** distance from the source, {!Dist.inf} if unreachable *)
  parent : int array;  (** a BFS-tree parent, [-1] for the source/unreachable *)
  num_paths : int array;
      (** number of distinct shortest paths from the source, saturated at
          {!path_count_cap} to avoid overflow *)
}

val path_count_cap : int
(** Saturation value for shortest-path counting. *)

val bfs : Graph.t -> int -> int array
(** [bfs g s] is the array of distances from [s]. *)

val bfs_rows : ?pool:Repro_par.Pool.t -> Graph.t -> int array array
(** One BFS per vertex — the distance-rows workload of the Theorem 4.1
    pipeline — fanned out across the pool (default
    {!Repro_par.Pool.default}) with one queue of scratch per domain.
    Row [s] equals [bfs g s]; the result is identical for any job
    count. *)

val bfs_full : Graph.t -> int -> bfs_result
(** BFS with parent pointers and shortest-path counting. *)

val bfs_limited : Graph.t -> int -> radius:int -> (int * int) list
(** [bfs_limited g s ~radius] lists [(v, d)] for every vertex [v] with
    [d = dist(s, v) <= radius], in non-decreasing order of distance. *)

val components : Graph.t -> int array * int
(** [components g] is [(comp, k)]: [comp.(v)] is the index in
    [0 .. k-1] of the connected component of [v]. *)

val is_connected : Graph.t -> bool
(** [true] for the empty graph. *)

val eccentricity : Graph.t -> int -> int
(** Maximum finite distance from the vertex; {!Dist.inf} when some
    vertex is unreachable. *)

val diameter : Graph.t -> int
(** Exact diameter by running BFS from every vertex; {!Dist.inf} when
    disconnected, [0] for the empty or single-vertex graph. *)

val dfs_order : Graph.t -> int -> int list
(** Preorder of the DFS from the given source (its component only). *)
