type parse_error = { line : int; msg : string }

exception Parse of parse_error

let fail line msg = raise (Parse { line; msg })

let string_of_parse_error e =
  if e.line = 0 then e.msg else Printf.sprintf "line %d: %s" e.line e.msg

let pp_parse_error ppf e = Format.pp_print_string ppf (string_of_parse_error e)

let to_string g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "%d %d\n" (Graph.n g) (Graph.m g));
  Graph.iter_edges g (fun u v ->
      Buffer.add_string buf (Printf.sprintf "%d %d\n" u v));
  Buffer.contents buf

(* Trimmed non-blank, non-comment lines, each tagged with its 1-based
   position in the raw input so parse errors can point at it. *)
let numbered_lines s =
  String.split_on_char '\n' s
  |> List.mapi (fun i l -> (i + 1, String.trim l))
  |> List.filter (fun (_, l) -> l <> "" && l.[0] <> '#')

let ints_of_line ~what ln line =
  String.split_on_char ' ' line
  |> List.filter (fun t -> t <> "")
  |> List.map (fun t ->
         match int_of_string_opt t with
         | Some i -> i
         | None -> fail ln (what ^ ": bad token " ^ t))

let header_of ~what = function
  | [] -> fail 0 (what ^ ": empty input")
  | (ln, header) :: rest -> (
      match ints_of_line ~what ln header with
      | [ n; m ] ->
          if n < 0 then fail ln (what ^ ": negative vertex count");
          if m < 0 then fail ln (what ^ ": negative edge count");
          ((ln, n, m), rest)
      | _ -> fail ln (what ^ ": bad header"))

let check_endpoints ~what ln ~n u v =
  if u < 0 || u >= n || v < 0 || v >= n then
    fail ln (what ^ ": endpoint out of range");
  if u = v then fail ln (what ^ ": self loop")

let duplicate_guard ~what =
  let seen = Hashtbl.create 64 in
  fun ln u v ->
    let key = (min u v, max u v) in
    if Hashtbl.mem seen key then fail ln (what ^ ": duplicate edge");
    Hashtbl.add seen key ()

let of_string_res s =
  let what = "Graph_io.of_string" in
  try
    let (hln, n, m), rest = header_of ~what (numbered_lines s) in
    if List.length rest <> m then fail hln (what ^ ": edge count mismatch");
    let dup = duplicate_guard ~what in
    let edges =
      List.map
        (fun (ln, l) ->
          match ints_of_line ~what ln l with
          | [ u; v ] ->
              check_endpoints ~what ln ~n u v;
              dup ln u v;
              (u, v)
          | _ -> fail ln (what ^ ": bad edge line"))
        rest
    in
    match Graph.of_edges ~n edges with
    | g -> Ok g
    | exception Invalid_argument msg -> fail 0 msg
  with Parse e -> Error e

let wgraph_to_string g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "%d %d\n" (Wgraph.n g) (Wgraph.m g));
  List.iter
    (fun (u, v, w) -> Buffer.add_string buf (Printf.sprintf "%d %d %d\n" u v w))
    (Wgraph.edges g);
  Buffer.contents buf

let wgraph_of_string_res s =
  let what = "Graph_io.wgraph_of_string" in
  try
    let (hln, n, m), rest = header_of ~what (numbered_lines s) in
    if List.length rest <> m then fail hln (what ^ ": edge count mismatch");
    let dup = duplicate_guard ~what in
    let edges =
      List.map
        (fun (ln, l) ->
          match ints_of_line ~what ln l with
          | [ u; v; w ] ->
              check_endpoints ~what ln ~n u v;
              if w < 0 then fail ln (what ^ ": negative weight");
              dup ln u v;
              (u, v, w)
          | _ -> fail ln (what ^ ": bad edge line"))
        rest
    in
    match Wgraph.of_edges ~n edges with
    | g -> Ok g
    | exception Invalid_argument msg -> fail 0 msg
  with Parse e -> Error e

let to_dot ?(name = "g") g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n" name);
  for v = 0 to Graph.n g - 1 do
    Buffer.add_string buf (Printf.sprintf "  %d;\n" v)
  done;
  Graph.iter_edges g (fun u v ->
      Buffer.add_string buf (Printf.sprintf "  %d -- %d;\n" u v));
  Buffer.add_string buf "}\n";
  Buffer.contents buf
