type t = { n : int; rows : int array array }

let of_graph ?pool g = { n = Graph.n g; rows = Traversal.bfs_rows ?pool g }

let of_wgraph ?pool g =
  { n = Wgraph.n g; rows = Dijkstra.distance_rows ?pool g }

let n t = t.n

let dist t u v =
  if u < 0 || u >= t.n || v < 0 || v >= t.n then invalid_arg "Apsp.dist";
  t.rows.(u).(v)

let row t u =
  if u < 0 || u >= t.n then invalid_arg "Apsp.row";
  t.rows.(u)

let max_finite t =
  let best = ref 0 in
  Array.iter
    (Array.iter (fun d -> if Dist.is_finite d && d > !best then best := d))
    t.rows;
  !best

let check_triangle_inequality t =
  let ok = ref true in
  for u = 0 to t.n - 1 do
    for v = 0 to t.n - 1 do
      for w = 0 to t.n - 1 do
        if t.rows.(u).(w) > Dist.add t.rows.(u).(v) t.rows.(v).(w) then
          ok := false
      done
    done
  done;
  !ok
