type bfs_result = {
  dist : int array;
  parent : int array;
  num_paths : int array;
}

let path_count_cap = max_int / 4

let cap_add a b =
  if a >= path_count_cap - b then path_count_cap else a + b

let bfs g s =
  let n = Graph.n g in
  if s < 0 || s >= n then invalid_arg "Traversal.bfs: source out of range";
  let dist = Array.make n Dist.inf in
  let q = Queue.create () in
  dist.(s) <- 0;
  Queue.add s q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Graph.iter_neighbors g u (fun v ->
        if dist.(v) = Dist.inf then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v q
        end)
  done;
  dist

(* BFS body over a caller-supplied (drained) queue, so row sweeps can
   reuse one queue per domain instead of allocating per root. *)
let bfs_with ~queue g s =
  let n = Graph.n g in
  let dist = Array.make n Dist.inf in
  dist.(s) <- 0;
  Queue.add s queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Graph.iter_neighbors g u (fun v ->
        if dist.(v) = Dist.inf then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue
        end)
  done;
  dist

let bfs_rows ?pool g =
  let n = Graph.n g in
  let rows = Array.make n [||] in
  let pool = match pool with Some p -> p | None -> Repro_par.Pool.default () in
  (* one queue per execution slot; a slot runs its chunks sequentially,
     and each BFS drains the queue, so reuse is safe *)
  let queues =
    Array.init (Repro_par.Pool.jobs pool) (fun _ -> Queue.create ())
  in
  Repro_par.Pool.parallel_for pool ~n (fun ~slot lo hi ->
      let queue = queues.(slot) in
      for s = lo to hi - 1 do
        rows.(s) <- bfs_with ~queue g s
      done);
  rows

let bfs_full g s =
  let n = Graph.n g in
  if s < 0 || s >= n then invalid_arg "Traversal.bfs_full: source out of range";
  let dist = Array.make n Dist.inf in
  let parent = Array.make n (-1) in
  let num_paths = Array.make n 0 in
  let q = Queue.create () in
  dist.(s) <- 0;
  num_paths.(s) <- 1;
  Queue.add s q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Graph.iter_neighbors g u (fun v ->
        if dist.(v) = Dist.inf then begin
          dist.(v) <- dist.(u) + 1;
          parent.(v) <- u;
          num_paths.(v) <- num_paths.(u);
          Queue.add v q
        end
        else if dist.(v) = dist.(u) + 1 then
          num_paths.(v) <- cap_add num_paths.(v) num_paths.(u))
  done;
  { dist; parent; num_paths }

let bfs_limited g s ~radius =
  let n = Graph.n g in
  if s < 0 || s >= n then invalid_arg "Traversal.bfs_limited";
  let dist = Hashtbl.create 64 in
  let q = Queue.create () in
  Hashtbl.replace dist s 0;
  Queue.add s q;
  let acc = ref [ (s, 0) ] in
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    let du = Hashtbl.find dist u in
    if du < radius then
      Graph.iter_neighbors g u (fun v ->
          if not (Hashtbl.mem dist v) then begin
            Hashtbl.replace dist v (du + 1);
            acc := (v, du + 1) :: !acc;
            Queue.add v q
          end)
  done;
  List.rev !acc

let components g =
  let n = Graph.n g in
  let comp = Array.make n (-1) in
  let k = ref 0 in
  let q = Queue.create () in
  for s = 0 to n - 1 do
    if comp.(s) = -1 then begin
      comp.(s) <- !k;
      Queue.add s q;
      while not (Queue.is_empty q) do
        let u = Queue.pop q in
        Graph.iter_neighbors g u (fun v ->
            if comp.(v) = -1 then begin
              comp.(v) <- !k;
              Queue.add v q
            end)
      done;
      incr k
    end
  done;
  (comp, !k)

let is_connected g =
  let n = Graph.n g in
  n = 0 || snd (components g) = 1

let eccentricity g s =
  let dist = bfs g s in
  Array.fold_left max 0 dist

let diameter g =
  let n = Graph.n g in
  if n = 0 then 0
  else begin
    let best = ref 0 in
    for s = 0 to n - 1 do
      let e = eccentricity g s in
      if e > !best then best := e
    done;
    !best
  end

let dfs_order g s =
  let n = Graph.n g in
  if s < 0 || s >= n then invalid_arg "Traversal.dfs_order";
  let seen = Array.make n false in
  let order = ref [] in
  let rec go u =
    seen.(u) <- true;
    order := u :: !order;
    Graph.iter_neighbors g u (fun v -> if not seen.(v) then go v)
  in
  go s;
  List.rev !order
