(** SHA-256, self-contained (FIPS 180-4) — no external dependencies.

    Used to pin the determinism contract of {!Pool}: bench part 6 and
    the parallel test suites hash label serialisations and
    metrics/span snapshots produced at different job counts and assert
    the digests coincide, and the hashes recorded in
    [BENCH_parallel.json] make the byte-identity auditable offline. *)

val sha256_hex : string -> string
(** Lowercase hex digest (64 characters) of the input bytes. *)

val sha256 : string -> string
(** Raw 32-byte digest. *)
