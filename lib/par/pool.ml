(* Fork-join batches over a persistent set of worker domains.

   One batch runs at a time: [tasks] is the current batch, [next] the
   first unclaimed index, [unfinished] the tasks not yet completed.
   Workers park on [work] between batches; the submitter participates
   in its own batch (slot 0) and parks on [finished] only for the tail.
   All shared fields are guarded by [mutex]; the release/acquire pairs
   on it order every task's writes before the submitter's post-join
   reads, so per-index output arrays need no further synchronisation. *)

type t = {
  jobs : int;
  mutex : Mutex.t;
  work : Condition.t;
  finished : Condition.t;
  mutable tasks : (int -> unit) array; (* slot -> unit *)
  mutable exns : exn option array; (* one slot per task of the batch *)
  mutable next : int;
  mutable unfinished : int;
  mutable busy : bool;
  mutable closing : bool;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

(* Worker tasks must never submit to the pool they run on (single-batch
   design); flag the context so nested calls degrade to inline runs. *)
let inside_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let max_jobs = 64
let clamp_jobs j = max 1 (min j max_jobs)

let jobs t = t.jobs

(* Claim loop shared by workers and the submitting domain. Returns when
   the current batch has no unclaimed task left. *)
let drain_batch t ~slot =
  let continue = ref true in
  while !continue do
    Mutex.lock t.mutex;
    if t.next < Array.length t.tasks then begin
      let i = t.next in
      t.next <- i + 1;
      Mutex.unlock t.mutex;
      (try t.tasks.(i) slot with e -> t.exns.(i) <- Some e);
      Mutex.lock t.mutex;
      t.unfinished <- t.unfinished - 1;
      if t.unfinished = 0 then Condition.broadcast t.finished;
      Mutex.unlock t.mutex
    end
    else begin
      Mutex.unlock t.mutex;
      continue := false
    end
  done

let worker t slot () =
  Domain.DLS.set inside_worker true;
  let stop = ref false in
  while not !stop do
    Mutex.lock t.mutex;
    (* claim outstanding work even when closing, so shutdown never
       abandons a batch the submitter is joining on *)
    while t.next >= Array.length t.tasks && not t.closing do
      Condition.wait t.work t.mutex
    done;
    if t.next < Array.length t.tasks then begin
      Mutex.unlock t.mutex;
      drain_batch t ~slot
    end
    else begin
      stop := true;
      Mutex.unlock t.mutex
    end
  done

let shutdown t =
  Mutex.lock t.mutex;
  let already = t.closed in
  t.closing <- true;
  t.closed <- true;
  Condition.broadcast t.work;
  let workers = t.workers in
  t.workers <- [];
  Mutex.unlock t.mutex;
  if not already then List.iter Domain.join workers

let create ?jobs () =
  let jobs =
    match jobs with
    | Some j ->
        if j < 1 then invalid_arg "Pool.create: jobs must be positive";
        clamp_jobs j
    | None -> clamp_jobs (Domain.recommended_domain_count ())
  in
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      tasks = [||];
      exns = [||];
      next = 0;
      unfinished = 0;
      busy = false;
      closing = false;
      closed = false;
      workers = [];
    }
  in
  if jobs > 1 then begin
    t.workers <- List.init (jobs - 1) (fun i -> Domain.spawn (worker t (i + 1)));
    (* leaked pools must not block process termination *)
    at_exit (fun () -> shutdown t)
  end;
  t

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Run a batch of tasks (task i receives the executing slot). Inline
   when the pool has one job, is closed, is already mid-batch, or when
   called from inside one of its workers. *)
let run_tasks t tasks =
  let k = Array.length tasks in
  if k = 0 then ()
  else begin
    let inline () =
      Array.iter (fun f -> f 0) tasks
    in
    if t.jobs = 1 || Domain.DLS.get inside_worker then inline ()
    else begin
      Mutex.lock t.mutex;
      if t.busy || t.closed then begin
        Mutex.unlock t.mutex;
        inline ()
      end
      else begin
        t.busy <- true;
        t.tasks <- tasks;
        t.exns <- Array.make k None;
        t.next <- 0;
        t.unfinished <- k;
        Condition.broadcast t.work;
        Mutex.unlock t.mutex;
        drain_batch t ~slot:0;
        Mutex.lock t.mutex;
        while t.unfinished > 0 do
          Condition.wait t.finished t.mutex
        done;
        t.tasks <- [||];
        t.busy <- false;
        let exns = t.exns in
        t.exns <- [||];
        Mutex.unlock t.mutex;
        (* deterministic propagation: lowest task index wins *)
        Array.iter (function Some e -> raise e | None -> ()) exns
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* the jobs knob                                                       *)

let recommended () = Domain.recommended_domain_count ()

let jobs_override = ref None

let set_default_jobs j =
  if j < 1 then invalid_arg "Pool.set_default_jobs: jobs must be positive";
  jobs_override := Some (clamp_jobs j)

let env_jobs () =
  match Sys.getenv_opt "HUBHARD_JOBS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> Some (clamp_jobs j)
      | _ -> None)

let default_jobs () =
  match !jobs_override with
  | Some j -> j
  | None -> (
      match env_jobs () with
      | Some j -> j
      | None -> clamp_jobs (recommended ()))

let global : t option ref = ref None

let default () =
  let j = default_jobs () in
  match !global with
  | Some p when p.jobs = j && not p.closed -> p
  | prev ->
      Option.iter shutdown prev;
      let p = create ~jobs:j () in
      global := Some p;
      p

(* ------------------------------------------------------------------ *)
(* combinators                                                         *)

let chunk_count t ?chunks n =
  let d =
    match chunks with
    | Some c ->
        if c < 1 then invalid_arg "Pool: chunks must be positive";
        c
    | None -> if t.jobs = 1 then 1 else 8 * t.jobs
  in
  max 1 (min d n)

(* chunk k of c over [0, n): balanced contiguous ranges *)
let chunk_bounds ~n ~c k =
  let base = n / c and extra = n mod c in
  let lo = (k * base) + min k extra in
  let hi = lo + base + (if k < extra then 1 else 0) in
  (lo, hi)

let parallel_for t ?chunks ~n f =
  if n < 0 then invalid_arg "Pool.parallel_for: negative n";
  if n > 0 then begin
    let c = chunk_count t ?chunks n in
    run_tasks t
      (Array.init c (fun k slot ->
           let lo, hi = chunk_bounds ~n ~c k in
           f ~slot lo hi))
  end

let map_chunks t ?chunks ~n f =
  if n < 0 then invalid_arg "Pool.map_chunks: negative n";
  if n = 0 then [||]
  else begin
    let c = chunk_count t ?chunks n in
    let out = Array.make c None in
    run_tasks t
      (Array.init c (fun k slot ->
           let lo, hi = chunk_bounds ~n ~c k in
           out.(k) <- Some (f ~slot lo hi)));
    Array.map (function Some x -> x | None -> assert false) out
  end

let reduce_chunks t ?chunks ~n ~init ~fold map =
  Array.fold_left fold init (map_chunks t ?chunks ~n map)

let init t ?chunks n f =
  if n < 0 then invalid_arg "Pool.init: negative n";
  if n = 0 then [||]
  else begin
    let out = Array.make n (f 0) in
    parallel_for t ?chunks ~n (fun ~slot:_ lo hi ->
        (* chunk 0 recomputes index 0; f is pure by contract *)
        for i = lo to hi - 1 do
          out.(i) <- f i
        done);
    out
  end

let run_list t thunks =
  let arr = Array.of_list thunks in
  let out = Array.make (Array.length arr) None in
  run_tasks t
    (Array.mapi (fun i thunk _slot -> out.(i) <- Some (thunk ())) arr);
  Array.to_list
    (Array.map (function Some x -> x | None -> assert false) out)
