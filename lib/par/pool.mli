(** A small hand-rolled domain pool for the construction and batch-query
    hot paths — stdlib [Domain] + [Mutex]/[Condition] only, no external
    dependencies.

    {2 Determinism contract}

    Every combinator here is {e order-preserving}: chunk results are
    merged in chunk index order, chunks cover index ranges contiguously
    and exceptions are re-raised for the lowest failing task index. A
    computation whose chunks (a) only read shared state, (b) write only
    per-index or per-chunk outputs and (c) route all counter/metric
    updates through the per-chunk results is therefore {e byte-identical}
    for [jobs = 1] and [jobs = N] — the property the determinism suite
    (test/test_par.ml) and bench part 6 pin down. Callers that need
    mutable scratch allocate one structure per {e slot} (the executing
    worker's index in [0, jobs)) and index it with the [~slot] argument;
    two tasks never run on one slot concurrently.

    {2 The jobs knob}

    The global default pool ({!default}) sizes itself from, in order:
    {!set_default_jobs} (the CLI [--jobs] flag), the [HUBHARD_JOBS]
    environment variable, then [Domain.recommended_domain_count ()].
    With one job no domains are ever spawned and every combinator runs
    inline in the caller.

    Nested or concurrent submissions never deadlock: a pool that is
    already executing a batch (or a call made from inside a worker task)
    runs the new batch inline in the calling domain. *)

type t

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains (clamped to
    [1 .. 64]; default {!default_jobs}). The pool keeps its workers
    parked on a condition variable between batches; {!shutdown} (or
    process exit) joins them. *)

val jobs : t -> int
(** Number of execution slots, including the submitting domain. *)

val shutdown : t -> unit
(** Join the worker domains. Idempotent; also registered with [at_exit]
    so leaked pools never block process termination. After shutdown the
    pool still works — everything runs inline. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] over a fresh pool and always shuts it down. *)

val recommended : unit -> int
(** [Domain.recommended_domain_count ()], recorded in bench artifacts
    for cross-machine comparability. *)

val set_default_jobs : int -> unit
(** Override the default job count (the CLI [--jobs] flag). The global
    pool is re-created lazily on the next {!default} call.
    @raise Invalid_argument if [jobs < 1]. *)

val default_jobs : unit -> int
(** The resolved default: {!set_default_jobs} override, else
    [HUBHARD_JOBS] (ignored unless a positive integer), else
    [Domain.recommended_domain_count ()]; clamped to [1 .. 64]. *)

val default : unit -> t
(** The lazily-created global pool at {!default_jobs}. Re-created (old
    workers joined) when the resolved job count changed since the last
    call. *)

val parallel_for : t -> ?chunks:int -> n:int -> (slot:int -> int -> int -> unit) -> unit
(** [parallel_for pool ~n f] partitions [0, n) into contiguous ranges
    and calls [f ~slot lo hi] for each (half-open, [lo < hi]). [chunks]
    defaults to [8 * jobs] (bounded by [n]); ranges differ in length by
    at most one. Exceptions propagate: the one from the lowest chunk
    index is re-raised after the batch drains. *)

val map_chunks : t -> ?chunks:int -> n:int -> (slot:int -> int -> int -> 'a) -> 'a array
(** Like {!parallel_for} but collects one result per chunk, in chunk
    index order — the order-preserving deterministic reduction
    primitive. Result [k] is [f ~slot lo_k hi_k]. *)

val reduce_chunks :
  t ->
  ?chunks:int ->
  n:int ->
  init:'b ->
  fold:('b -> 'a -> 'b) ->
  (slot:int -> int -> int -> 'a) ->
  'b
(** [map_chunks] followed by a left fold over the chunk results in
    chunk order: [fold (... (fold init r_0) ...) r_last]. *)

val init : t -> ?chunks:int -> int -> (int -> 'a) -> 'a array
(** Parallel [Array.init]: element order, and therefore the result, is
    identical to the sequential version for pure [f]. *)

val run_list : t -> (unit -> 'a) list -> 'a list
(** Run independent thunks, returning their results in input order. *)
