open Repro_graph

type request =
  | Dist of { u : int; v : int }
  | Batch of (int * int) array
  | One_to_many of { source : int; targets : int array }
  | Many_to_many of { sources : int array; targets : int array }
  | Top_k_nearest of { source : int; k : int }
  | Eccentricity of int
  | Farthest of int
  | Diameter_radius

type response =
  | R_dist of int
  | R_dists of int array
  | R_matrix of int array array
  | R_nearest of (int * int) array
  | R_ecc of int
  | R_farthest of { vertex : int; dist : int }
  | R_diam_rad of { diameter : int; radius : int }

let name = function
  | Dist _ -> "dist"
  | Batch _ -> "batch"
  | One_to_many _ -> "one_to_many"
  | Many_to_many _ -> "many_to_many"
  | Top_k_nearest _ -> "top_k_nearest"
  | Eccentricity _ -> "eccentricity"
  | Farthest _ -> "farthest"
  | Diameter_radius -> "diameter_radius"

let validate ~n req =
  let vertex v =
    if v < 0 || v >= n then
      Error (Printf.sprintf "vertex %d out of range [0, %d)" v n)
    else Ok ()
  in
  let vertices a =
    Array.fold_left
      (fun acc v -> match acc with Error _ -> acc | Ok () -> vertex v)
      (Ok ()) a
  in
  match req with
  | Dist { u; v } -> ( match vertex u with Ok () -> vertex v | e -> e)
  | Batch pairs ->
      Array.fold_left
        (fun acc (u, v) ->
          match acc with
          | Error _ -> acc
          | Ok () -> ( match vertex u with Ok () -> vertex v | e -> e))
        (Ok ()) pairs
  | One_to_many { source; targets } -> (
      match vertex source with Ok () -> vertices targets | e -> e)
  | Many_to_many { sources; targets } -> (
      match vertices sources with Ok () -> vertices targets | e -> e)
  | Top_k_nearest { source; k } -> (
      if k < 0 then Error (Printf.sprintf "k must be non-negative, got %d" k)
      else match vertex source with Ok () -> Ok () | e -> e)
  | Eccentricity v | Farthest v -> vertex v
  | Diameter_radius -> Ok ()

(* ----- string forms -------------------------------------------------- *)

let dist_str d = if Dist.is_finite d then string_of_int d else "inf"

let ints_str a = String.concat "," (Array.to_list (Array.map string_of_int a))

let request_to_string = function
  | Dist { u; v } -> Printf.sprintf "dist:%d,%d" u v
  | Batch pairs ->
      "batch:"
      ^ String.concat ";"
          (Array.to_list
             (Array.map (fun (u, v) -> Printf.sprintf "%d,%d" u v) pairs))
  | One_to_many { source; targets } ->
      Printf.sprintf "one-to-many:%d:%s" source (ints_str targets)
  | Many_to_many { sources; targets } ->
      Printf.sprintf "many-to-many:%s:%s" (ints_str sources) (ints_str targets)
  | Top_k_nearest { source; k } -> Printf.sprintf "top-k:%d,%d" source k
  | Eccentricity v -> Printf.sprintf "ecc:%d" v
  | Farthest v -> Printf.sprintf "farthest:%d" v
  | Diameter_radius -> "diam"

let parse_int what s =
  match int_of_string_opt (String.trim s) with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: bad integer %S" what s)

let parse_ints what s =
  if String.trim s = "" then Error (what ^ ": empty vertex list")
  else
    let parts = String.split_on_char ',' s in
    let rec go acc = function
      | [] -> Ok (Array.of_list (List.rev acc))
      | p :: rest -> (
          match parse_int what p with
          | Ok v -> go (v :: acc) rest
          | Error _ as e -> e)
    in
    go [] parts

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let request_of_string s =
  let op, rest =
    match String.index_opt s ':' with
    | None -> (s, "")
    | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  in
  match op with
  | "dist" -> (
      let* a = parse_ints "dist" rest in
      match a with
      | [| u; v |] -> Ok (Dist { u; v })
      | _ -> Error "dist: expected exactly 'u,v'")
  | "batch" ->
      let groups = String.split_on_char ';' rest in
      let rec go acc = function
        | [] -> Ok (Batch (Array.of_list (List.rev acc)))
        | g :: rest -> (
            let* a = parse_ints "batch" g in
            match a with
            | [| u; v |] -> go ((u, v) :: acc) rest
            | _ -> Error "batch: each pair must be 'u,v'")
      in
      go [] groups
  | "one-to-many" -> (
      match String.index_opt rest ':' with
      | None -> Error "one-to-many: expected 's:t1,t2,...'"
      | Some i ->
          let* source = parse_int "one-to-many" (String.sub rest 0 i) in
          let* targets =
            parse_ints "one-to-many"
              (String.sub rest (i + 1) (String.length rest - i - 1))
          in
          Ok (One_to_many { source; targets }))
  | "many-to-many" -> (
      match String.index_opt rest ':' with
      | None -> Error "many-to-many: expected 's1,s2:t1,t2'"
      | Some i ->
          let* sources = parse_ints "many-to-many" (String.sub rest 0 i) in
          let* targets =
            parse_ints "many-to-many"
              (String.sub rest (i + 1) (String.length rest - i - 1))
          in
          Ok (Many_to_many { sources; targets }))
  | "top-k" -> (
      let* a = parse_ints "top-k" rest in
      match a with
      | [| source; k |] -> Ok (Top_k_nearest { source; k })
      | _ -> Error "top-k: expected 's,k'")
  | "ecc" ->
      let* v = parse_int "ecc" rest in
      Ok (Eccentricity v)
  | "farthest" ->
      let* v = parse_int "farthest" rest in
      Ok (Farthest v)
  | "diam" ->
      if rest = "" then Ok Diameter_radius
      else Error "diam: takes no arguments"
  | other -> Error (Printf.sprintf "unknown operation %S" other)

let response_to_string = function
  | R_dist d -> "dist " ^ dist_str d
  | R_dists a ->
      "dists " ^ String.concat "," (Array.to_list (Array.map dist_str a))
  | R_matrix m ->
      "matrix "
      ^ String.concat ";"
          (Array.to_list
             (Array.map
                (fun row ->
                  String.concat "," (Array.to_list (Array.map dist_str row)))
                m))
  | R_nearest pairs ->
      "nearest "
      ^ String.concat ","
          (Array.to_list
             (Array.map
                (fun (v, d) -> string_of_int v ^ ":" ^ dist_str d)
                pairs))
  | R_ecc d -> "ecc " ^ dist_str d
  | R_farthest { vertex; dist } ->
      Printf.sprintf "farthest %d:%s" vertex (dist_str dist)
  | R_diam_rad { diameter; radius } ->
      Printf.sprintf "diam %s rad %s" (dist_str diameter) (dist_str radius)

let equal_response (a : response) (b : response) = a = b
let pp_response ppf r = Format.pp_print_string ppf (response_to_string r)

(* ----- shared reducers ---------------------------------------------- *)

let by_dist_then_vertex (v1, d1) (v2, d2) =
  if d1 <> d2 then compare d1 d2 else compare v1 v2

let k_nearest ~k pairs =
  if k < 0 then invalid_arg "Ops.k_nearest: k must be non-negative";
  let sorted = Array.copy pairs in
  Array.sort by_dist_then_vertex sorted;
  if k >= Array.length sorted then sorted else Array.sub sorted 0 k

let farthest_of pairs =
  Array.fold_left
    (fun acc (v, d) ->
      match acc with
      | None -> Some (v, d)
      | Some (bv, bd) ->
          if d > bd || (d = bd && v < bv) then Some (v, d) else acc)
    None pairs

let row_pairs row = Array.mapi (fun v d -> (v, d)) row

(* ----- brute-force reference ----------------------------------------- *)

let brute ~n ~query req =
  let row s = Array.init n (fun v -> (v, query s v)) in
  let ecc_of s =
    match farthest_of (row s) with Some (_, d) -> d | None -> 0
  in
  match req with
  | Dist { u; v } -> R_dist (query u v)
  | Batch pairs -> R_dists (Array.map (fun (u, v) -> query u v) pairs)
  | One_to_many { source; targets } ->
      R_dists (Array.map (query source) targets)
  | Many_to_many { sources; targets } ->
      R_matrix (Array.map (fun s -> Array.map (query s) targets) sources)
  | Top_k_nearest { source; k } -> R_nearest (k_nearest ~k (row source))
  | Eccentricity v -> R_ecc (ecc_of v)
  | Farthest v -> (
      match farthest_of (row v) with
      | Some (vertex, dist) -> R_farthest { vertex; dist }
      | None -> R_farthest { vertex = v; dist = 0 })
  | Diameter_radius ->
      if n = 0 then R_diam_rad { diameter = 0; radius = 0 }
      else begin
        let dia = ref 0 and rad = ref max_int in
        for v = 0 to n - 1 do
          let e = ecc_of v in
          if e > !dia then dia := e;
          if e < !rad then rad := e
        done;
        R_diam_rad { diameter = !dia; radius = !rad }
      end
