(** A metrics registry: named counters, gauges and fixed-bucket latency
    histograms.

    The registry is the one shared sink of the serving stack — the
    resilient oracle emits its incident counters here, {!Obs.instrument}
    times every backend query into a histogram here, and the CLI and
    bench harness export the whole thing as JSON or a text report.

    Histograms have {e fixed} bucket upper bounds, so the percentile
    snapshot is a deterministic function of the observed values: no
    sampling, no decay, no wall-clock dependence. Under the manual
    {!Clock} the entire snapshot is reproducible bit for bit, which is
    what the observability test suite locks in.

    Metric names are flat strings; the convention throughout the stack
    is dot-separated paths, e.g. [flat-hub-labeling.latency_ns] or
    [resilient.spot_checks]. Registering the same name twice returns
    the same metric; re-registering a name as a different metric kind
    raises. *)

type t
(** A registry. Not thread-safe (like the stores it observes). *)

type counter
type gauge
type histogram

val create : unit -> t

(** {1 Counters and gauges} *)

val counter : t -> string -> counter
(** Get or create a monotonically increasing counter. *)

val incr : ?by:int -> counter -> unit
(** Add [by] (default 1) to a counter.
    @raise Invalid_argument on a negative [by]. *)

val counter_value : counter -> int

val gauge : t -> string -> gauge
(** Get or create a gauge (a settable instantaneous value). *)

val set_gauge : gauge -> int -> unit
val gauge_value : gauge -> int

(** {1 Latency histograms} *)

val default_latency_buckets : int array
(** Exponentially spaced upper bounds in nanoseconds, from 100ns to
    1s. Values above the last bound land in an implicit overflow
    bucket. *)

val histogram : ?buckets:int array -> t -> string -> histogram
(** Get or create a histogram. [buckets] (default
    {!default_latency_buckets}) are the strictly increasing bucket
    upper bounds; an overflow bucket is added implicitly.
    @raise Invalid_argument on empty or non-increasing [buckets], or if
    the name already exists with different buckets. *)

val observe : ?exemplar:string -> histogram -> int -> unit
(** Record one value (negative values are clamped to 0). When
    [exemplar] is given (a trace id from {!Trace_ctx.id_string}), the
    value's bucket retains it as its last sampled exemplar, linking
    outliers in this histogram to their trace trees. *)

val observe_span :
  ?clock:Clock.t ->
  ?exemplar:(unit -> string option) ->
  histogram ->
  (unit -> 'a) ->
  'a
(** Time a thunk with [clock] (default {!Clock.monotonic}) and record
    the elapsed nanoseconds — also when the thunk raises. [exemplar] is
    consulted {e after} the thunk, so force-sampling decisions made
    during the work (a retry, a degraded answer) are visible to it. *)

val hist_count : histogram -> int
val hist_sum : histogram -> int
val hist_max : histogram -> int

val percentile : histogram -> float -> int
(** [percentile h q] for [q] in [(0, 1]]: the upper bound of the bucket
    containing the sample of rank [ceil (q * count)], capped at the
    maximum observed value (so a single sample reports itself exactly,
    and overflow-bucket percentiles report the true maximum). [0] when
    the histogram is empty.
    @raise Invalid_argument when [q] is outside [(0, 1]]. *)

(** {1 Snapshots and export} *)

type hist_summary = {
  count : int;
  sum : int;  (** total observed nanoseconds *)
  p50 : int;
  p90 : int;
  p99 : int;
  max : int;
  exemplars : (int * string) list;
      (** [(bucket index, trace id)] for buckets that retain an
          exemplar, sorted by bucket index; [[]] when none *)
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * int) list;
  histograms : (string * hist_summary) list;
}
(** All lists sorted by metric name, so snapshots of equal registries
    are structurally equal. *)

val snapshot : t -> snapshot

val find_counter : snapshot -> string -> int option
val find_histogram : snapshot -> string -> hist_summary option

val prefix_snapshot : string -> snapshot -> snapshot
(** [prefix_snapshot p s] renames every metric [name] to [p ^ name];
    sort order is preserved because the prefix is common. The sharded
    serving tier uses this to namespace each worker's registry
    ([shard0.], [shard1.], ...) before merging. *)

val union_snapshots : snapshot list -> snapshot
(** Concatenate and re-sort by metric name. Callers keep names disjoint
    (e.g. via {!prefix_snapshot}); duplicate names are kept as-is, in
    input order within equal keys. *)

val snapshot_to_wire : snapshot -> string
(** Compact line-based serialisation for shipping a snapshot over the
    shard wire protocol: one metric per line —
    [c <name> <value>], [g <name> <value>],
    [h <name> <count> <sum> <p50> <p90> <p99> <max>], and after each
    histogram one [x <name> <bucket> <exemplar>] line per retained
    exemplar. Metric names (and exemplars) follow the dot-separated
    convention and must not contain whitespace or newlines (raises
    [Invalid_argument] otherwise). Canonical: equal snapshots serialise
    to equal bytes. *)

val snapshot_of_wire : string -> (snapshot, string) result
(** Parse {!snapshot_to_wire} output. Every malformed line yields
    [Error] naming the 1-based line; never raises. *)

val to_json : snapshot -> string
(** The registry as one JSON object:
    [{"counters": {name: int, ...},
      "gauges": {name: int, ...},
      "histograms": {name: {"count": int, "sum_ns": int, "p50_ns": int,
                            "p90_ns": int, "p99_ns": int, "max_ns": int}}}]
    — histograms with exemplars additionally carry
    ["exemplars": {"<bucket>": "<trace id>", ...}]; the key is absent
    otherwise, keeping exemplar-free output byte-stable
    (see docs/OBSERVABILITY.md for the full schema). *)

val to_prometheus : t -> string
(** The registry in Prometheus text exposition format: counters as
    [<name>_total], gauges verbatim, histograms as cumulative
    [<name>_bucket{le="..."}] series plus [_sum] and [_count], each
    preceded by a [# TYPE] line. Characters outside
    [[a-zA-Z0-9_:]] in metric names are mangled to [_]; metrics are
    sorted by (original) name. Takes the registry, not a snapshot,
    because the exposition needs the full per-bucket counts. *)

val sample_runtime_gauges : t -> unit
(** Refresh the OCaml runtime gauges [runtime.gc.minor_collections],
    [runtime.gc.major_collections], [runtime.heap_words] and
    [runtime.live_words] from [Gc.stat]. Call at snapshot time; note
    [Gc.stat] performs a full major collection. *)

val pp : Format.formatter -> snapshot -> unit
(** Human-readable text report, one metric per line. *)
