(** Nanosecond clocks behind the latency instrumentation.

    Everything in {!Metrics} and {!Obs} that measures time reads one of
    these, so tests swap in a {!manual} clock and get bit-identical
    histograms on every run — no wall-clock dependence anywhere in the
    observability test surface. *)

type t = unit -> int64
(** A clock is a function returning the current time in nanoseconds.
    Only differences of readings are meaningful. *)

val monotonic : t
(** The process clock (best available without external dependencies;
    backed by [Unix.gettimeofday], scaled to nanoseconds). Readings are
    clamped to be non-decreasing, so a wall-clock step backwards can
    never produce a negative latency. *)

type manual
(** A hand-driven clock for deterministic tests. *)

val manual : ?start:int64 -> ?auto_step:int64 -> unit -> manual
(** [manual ()] starts at [start] (default [0L]). When [auto_step] is
    positive, every reading first returns the current time and then
    advances it by [auto_step] — so two consecutive readings (the
    pattern {!Obs.instrument} uses around a query) are exactly
    [auto_step] apart, making measured latencies a pure function of the
    query count.
    @raise Invalid_argument on a negative [auto_step]. *)

val read : manual -> t
(** The clock face of a manual clock. *)

val advance : manual -> int64 -> unit
(** Move a manual clock forward.
    @raise Invalid_argument on a negative step. *)

val now : manual -> int64
(** Current reading without advancing (even under [auto_step]). *)
