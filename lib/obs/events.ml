type level = Debug | Info | Warn | Error

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

type value = Int of int | Str of string | Float of float | Bool of bool

type event = {
  ts_ns : int64;
  level : level;
  name : string;
  fields : (string * value) list;
}

type ring_state = {
  capacity : int;
  buf : event option array;
  mutable next : int;
}

type sink = Ring of ring_state | Stream of out_channel | Null

let ring ~capacity =
  if capacity <= 0 then invalid_arg "Events.ring: capacity must be positive";
  Ring { capacity; buf = Array.make capacity None; next = 0 }

let stream oc = Stream oc
let null = Null

type t = {
  clock : Clock.t;
  min_level : level;
  sink : sink;
  mutable total : int;
}

let create ?(clock = Clock.monotonic) ?(min_level = Debug) sink =
  { clock; min_level; sink; total = 0 }

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let value_to_json = function
  | Int i -> string_of_int i
  | Str s -> Printf.sprintf "\"%s\"" (json_escape s)
  | Float f -> Printf.sprintf "%.17g" f
  | Bool b -> if b then "true" else "false"

let to_json e =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "{\"ts_ns\": %Ld, \"level\": \"%s\", \"event\": \"%s\", \"fields\": {"
       e.ts_ns (level_name e.level) (json_escape e.name));
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf
        (Printf.sprintf "\"%s\": %s" (json_escape k) (value_to_json v)))
    e.fields;
  Buffer.add_string buf "}}";
  Buffer.contents buf

let pp ppf e =
  Format.fprintf ppf "[%s] %Ld %s" (level_name e.level) e.ts_ns e.name;
  List.iter
    (fun (k, v) -> Format.fprintf ppf " %s=%s" k (value_to_json v))
    e.fields

let emit t ?(level = Info) name fields =
  if level_rank level >= level_rank t.min_level then begin
    let e = { ts_ns = t.clock (); level; name; fields } in
    t.total <- t.total + 1;
    match t.sink with
    | Null -> ()
    | Ring r ->
        r.buf.(r.next) <- Some e;
        r.next <- (r.next + 1) mod r.capacity
    | Stream oc ->
        output_string oc (to_json e);
        output_char oc '\n';
        flush oc
  end

let recent t =
  match t.sink with
  | Null | Stream _ -> []
  | Ring r ->
      let out = ref [] in
      for k = 0 to r.capacity - 1 do
        let slot = (r.next - 1 - k + (2 * r.capacity)) mod r.capacity in
        match r.buf.(slot) with Some e -> out := e :: !out | None -> ()
      done;
      !out

let emitted t = t.total

(* The ambient log, for library code with no log parameter. Not
   thread-safe, like the rest of the observability layer. *)
let ambient : t option ref = ref None

let install t = ambient := Some t
let uninstall () = ambient := None
let installed () = !ambient

let emit_ambient ?level name fields =
  match !ambient with
  | None -> ()
  | Some t -> emit t ?level name fields
