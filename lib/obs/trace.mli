(** Per-query trace records.

    Every backend behind {!Backend.S} can explain a query: which stage
    served it, how many label entries the scan touched, whether the
    distance cache hit, and how far down the degradation chain the
    answer came from. {!Obs.instrument} turns these fields into
    registry counters; the ring-buffer {!recorder} keeps the most
    recent records for inspection (the [serve stats] CLI prints them).

    Distances use the {!Repro_graph.Dist} convention; in JSON an
    unreachable pair is encoded as [-1]. *)

type cache_status = Hit | Miss | Uncached

val cache_name : cache_status -> string
(** ["hit"], ["miss"] or ["uncached"]. *)

type t = {
  u : int;
  v : int;  (** query endpoints *)
  dist : int;  (** served distance ({!Repro_graph.Dist.inf} if unreachable) *)
  source : string;  (** backend or degradation stage that answered *)
  entries_scanned : int;  (** label entries touched; [0] when not applicable *)
  cache : cache_status;
  fallback_hops : int;  (** 0 = primary; each chain stage adds one *)
}

val make :
  ?entries_scanned:int ->
  ?cache:cache_status ->
  ?fallback_hops:int ->
  source:string ->
  u:int ->
  v:int ->
  dist:int ->
  unit ->
  t
(** Defaults: [entries_scanned = 0], [cache = Uncached],
    [fallback_hops = 0]. *)

val to_json : t -> string
(** One-line JSON object (see docs/OBSERVABILITY.md for the schema). *)

val pp : Format.formatter -> t -> unit

(** {1 Ring-buffer recorder} *)

type recorder
(** Keeps the last [capacity] records offered. *)

val recorder : capacity:int -> recorder
(** @raise Invalid_argument unless [capacity > 0]. *)

val record : recorder -> t -> unit

val records : recorder -> t list
(** Retained records, oldest first (at most [capacity]). *)

val seen : recorder -> int
(** Total records offered, including evicted ones. *)

val reset : recorder -> unit
(** Drop all retained records and zero {!seen}; capacity unchanged. *)
