(** Hierarchical timed phases for the construction pipelines.

    A span is a named, timed region of code; spans nest, forming a tree
    whose root is established by {!profile}. The construction pipelines
    ({!Repro_hub.Pll.build}, [Rs_hub.build], the Theorem 2.1 gadget
    builds, [Flat_hub.of_labels] packing, [Hub_io] save/load) are
    pre-instrumented with {!run}/{!count} calls, so profiling any of
    them is just wrapping the call in {!profile} — the per-phase
    construction profile mirrors the structure of the paper's proofs
    (see docs/OBSERVABILITY.md for the documented phase names).

    Outside a {!profile} context every {!run} degenerates to calling
    its thunk and every {!count} to a no-op, so instrumented library
    code costs one mutable-ref read per call in production.

    Under a manual {!Clock} with [auto_step] the whole tree — timings
    included — is a pure function of the executed code path, which is
    what the observability suite and the [@ci] span smoke lock in. *)

type node = {
  name : string;
  start_ns : int64;  (** offset from the root span's start *)
  elapsed_ns : int64;
  counters : (string * int) list;  (** sorted by counter name *)
  children : node list;  (** in start order *)
}
(** A completed span. *)

val profile : ?clock:Clock.t -> name:string -> (unit -> 'a) -> 'a * node
(** [profile ~name f] runs [f] as the root span of a fresh profiling
    context (default clock: {!Clock.monotonic}) and returns its result
    together with the completed span tree. Nested {!profile} calls are
    allowed — the outer context is saved and restored; the inner tree
    is returned to the inner caller, not grafted onto the outer tree.
    When [f] raises, the context is restored and the exception is
    re-raised (the partial tree is discarded). *)

val run : ?clock:Clock.t -> name:string -> (unit -> 'a) -> 'a
(** [run ~name f] times [f] as a child of the innermost active span.
    [clock] overrides the ambient context clock (rarely needed).
    Without an active {!profile} context, [f] is called directly and
    nothing is recorded. The span is closed — and recorded — also when
    [f] raises. *)

val count : string -> int -> unit
(** [count name k] adds [k] to the named counter of the innermost
    active span ([pairs_charged], [cover_size],
    [matching_augmentations], …). No-op outside a profiling context;
    negative [k] is allowed (counters are plain sums). *)

val enabled : unit -> bool
(** Whether a {!profile} context is active (for guarding counter
    computations that are themselves costly). *)

(** {1 Reports} *)

val total_ns : node -> int64
(** [elapsed_ns] of the root (convenience). *)

val find : node -> string -> node option
(** Depth-first search for the first descendant (or the node itself)
    with the given name. *)

val to_json : node -> string
(** The tree as one JSON object:
    [{"name": str, "start_ns": int, "elapsed_ns": int,
      "counters": {name: int, ...}, "children": [...]}].
    Deterministic: counters sorted by name, children in start order. *)

val pp_flame : Format.formatter -> node -> unit
(** Flame-style text report: one line per span, indented by depth, with
    elapsed time, percentage of the root span, and counters. *)
