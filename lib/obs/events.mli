(** Structured event log.

    Replaces ad-hoc [Printf] progress output with typed events: a
    level, a timestamp from the configured {!Clock}, an event name and
    key/value fields. Events flow into a {e sink} — a ring buffer
    keeping the most recent events (the [serve loop] snapshots embed
    them), an output channel streamed as JSONL (one event object per
    line), or the null sink.

    Library pipelines emit through the {e ambient} log ({!install} /
    {!emit_ambient}) so construction code needs no extra parameters:
    without an installed log, emitting is a no-op costing one ref read.

    Under a manual {!Clock} the timestamps — and hence the serialised
    log — are deterministic. *)

type level = Debug | Info | Warn | Error

val level_name : level -> string
(** ["debug"], ["info"], ["warn"], ["error"]. *)

type value = Int of int | Str of string | Float of float | Bool of bool

type event = {
  ts_ns : int64;
  level : level;
  name : string;
  fields : (string * value) list;  (** in emission order *)
}

(** {1 Sinks and logs} *)

type sink

val ring : capacity:int -> sink
(** Keep the last [capacity] events.
    @raise Invalid_argument unless [capacity > 0]. *)

val stream : out_channel -> sink
(** Write each event as one JSONL line, flushed per event (the channel
    is not closed by this module). *)

val null : sink
(** Count-and-discard. *)

type t

val create : ?clock:Clock.t -> ?min_level:level -> sink -> t
(** A log timestamping with [clock] (default {!Clock.monotonic}) and
    dropping events below [min_level] (default [Debug] — keep
    everything). *)

val emit : t -> ?level:level -> string -> (string * value) list -> unit
(** [emit t name fields] records one event (default level [Info]).
    Events below the log's [min_level] are dropped without reading the
    clock. *)

val recent : t -> event list
(** Retained events, oldest first: the ring contents for a ring sink,
    [[]] for stream/null sinks. *)

val emitted : t -> int
(** Events accepted (level filter passed), including ones a ring has
    since evicted. *)

(** {1 Ambient log} *)

val install : t -> unit
(** Make [t] the ambient log that {!emit_ambient} targets. *)

val uninstall : unit -> unit

val installed : unit -> t option

val emit_ambient : ?level:level -> string -> (string * value) list -> unit
(** Emit to the installed ambient log; no-op when none is installed. *)

(** {1 Export} *)

val to_json : event -> string
(** One-line JSON object:
    [{"ts_ns": int, "level": str, "event": str, "fields": {...}}].
    Fields keep emission order; strings are escaped; floats use ["%.17g"]
    so round-tripping is exact. *)

val pp : Format.formatter -> event -> unit
