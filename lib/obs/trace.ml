open Repro_graph

type cache_status = Hit | Miss | Uncached

let cache_name = function
  | Hit -> "hit"
  | Miss -> "miss"
  | Uncached -> "uncached"

type t = {
  u : int;
  v : int;
  dist : int;
  source : string;
  entries_scanned : int;
  cache : cache_status;
  fallback_hops : int;
}

let make ?(entries_scanned = 0) ?(cache = Uncached) ?(fallback_hops = 0)
    ~source ~u ~v ~dist () =
  { u; v; dist; source; entries_scanned; cache; fallback_hops }

let to_json t =
  Printf.sprintf
    "{\"u\": %d, \"v\": %d, \"dist\": %d, \"source\": \"%s\", \
     \"entries_scanned\": %d, \"cache\": \"%s\", \"fallback_hops\": %d}"
    t.u t.v
    (if Dist.is_finite t.dist then t.dist else -1)
    t.source t.entries_scanned (cache_name t.cache) t.fallback_hops

let pp ppf t =
  Format.fprintf ppf
    "query (%d, %d) -> %a via %s [scanned=%d cache=%s fallback_hops=%d]" t.u
    t.v Dist.pp t.dist t.source t.entries_scanned (cache_name t.cache)
    t.fallback_hops

type recorder = {
  capacity : int;
  buf : t option array;
  mutable next : int; (* slot for the next record *)
  mutable total : int;
}

let recorder ~capacity =
  if capacity <= 0 then invalid_arg "Trace.recorder: capacity must be positive";
  { capacity; buf = Array.make capacity None; next = 0; total = 0 }

let record r t =
  r.buf.(r.next) <- Some t;
  r.next <- (r.next + 1) mod r.capacity;
  r.total <- r.total + 1

let records r =
  let out = ref [] in
  (* walk backwards from the most recent slot, then reverse *)
  for k = 0 to r.capacity - 1 do
    let slot = (r.next - 1 - k + (2 * r.capacity)) mod r.capacity in
    match r.buf.(slot) with Some t -> out := t :: !out | None -> ()
  done;
  !out

let seen r = r.total

let reset r =
  Array.fill r.buf 0 r.capacity None;
  r.next <- 0;
  r.total <- 0
