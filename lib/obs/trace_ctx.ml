type t = {
  hi : int64;
  lo : int64;
  span_id : int64;
  sampled : bool;
  forced : bool;
}

(* Murmur3/splitmix finalizer: a cheap bijective mixer whose output is
   a pure function of the input — determinism is the whole point. *)
let mix z =
  let z = Int64.logxor z (Int64.shift_right_logical z 33) in
  let z = Int64.mul z 0xff51afd7ed558ccdL in
  let z = Int64.logxor z (Int64.shift_right_logical z 33) in
  let z = Int64.mul z 0xc4ceb9fe1a85ec53L in
  Int64.logxor z (Int64.shift_right_logical z 33)

let golden = 0x9e3779b97f4a7c15L

(* span id 0 is the reserved "no parent" marker *)
let nonzero z = if Int64.equal z 0L then 1L else z

let root ~seed ~seq =
  let base =
    Int64.add (Int64.mul (Int64.of_int seed) golden) (Int64.of_int seq)
  in
  let hi = mix base in
  let lo = mix (Int64.logxor hi golden) in
  {
    hi;
    lo;
    span_id = nonzero (mix lo);
    sampled = false;
    forced = false;
  }

let head_sample ~every t =
  if every < 1 then invalid_arg "Trace_ctx.head_sample: every must be >= 1";
  if every = 1 then { t with sampled = true }
  else
    let h = mix (Int64.logxor t.hi t.lo) in
    { t with sampled = Int64.unsigned_rem h (Int64.of_int every) = 0L }

let child t ~seq =
  {
    t with
    span_id =
      nonzero
        (mix (Int64.add t.span_id (Int64.mul golden (Int64.of_int (seq + 1)))));
  }

let force t = { t with sampled = true; forced = true }
let recorded t = t.sampled || t.forced
let id_string t = Printf.sprintf "%016Lx%016Lx" t.hi t.lo

(* ----- 25-byte wire block ------------------------------------------- *)

let encoded_len = 25

let encode t =
  let b = Bytes.create encoded_len in
  Bytes.set_int64_le b 0 t.hi;
  Bytes.set_int64_le b 8 t.lo;
  Bytes.set_int64_le b 16 t.span_id;
  let flags = (if t.sampled then 1 else 0) lor if t.forced then 2 else 0 in
  Bytes.set_uint8 b 24 flags;
  Bytes.unsafe_to_string b

let decode s ~pos =
  if pos < 0 || pos + encoded_len > String.length s then
    Error
      (Printf.sprintf "trace context: wanted %d bytes at %d, have %d"
         encoded_len pos (String.length s))
  else
    let hi = String.get_int64_le s pos in
    let lo = String.get_int64_le s (pos + 8) in
    let span_id = String.get_int64_le s (pos + 16) in
    let flags = Char.code s.[pos + 24] in
    (* unknown flag bits are ignored: a newer peer's extensions must
       not break this decoder *)
    Ok
      {
        hi;
        lo;
        span_id;
        sampled = flags land 1 <> 0;
        forced = flags land 2 <> 0;
      }

(* ----- completed spans ----------------------------------------------- *)

type span = {
  trace_hi : int64;
  trace_lo : int64;
  span_id : int64;
  parent_id : int64;
  name : string;
  start_ns : int64;
  elapsed_ns : int64;
}

type store = {
  capacity : int;
  q : span Queue.t;
  mutable total : int;
}

let store ~capacity =
  if capacity < 1 then invalid_arg "Trace_ctx.store: capacity must be >= 1";
  { capacity; q = Queue.create (); total = 0 }

let record st sp =
  st.total <- st.total + 1;
  Queue.push sp st.q;
  if Queue.length st.q > st.capacity then ignore (Queue.pop st.q)

let spans st = List.of_seq (Queue.to_seq st.q)
let seen st = st.total
let clear st = Queue.clear st.q

(* ----- wire form ------------------------------------------------------ *)

let check_name name =
  if name = "" then invalid_arg "Trace_ctx.spans_to_wire: empty span name";
  String.iter
    (fun c ->
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then
        invalid_arg
          (Printf.sprintf
             "Trace_ctx.spans_to_wire: name %S contains whitespace" name))
    name

let spans_to_wire sps =
  let buf = Buffer.create 256 in
  List.iter
    (fun sp ->
      check_name sp.name;
      Printf.bprintf buf "s %Lx %Lx %Lx %Lx %Ld %Ld %s\n" sp.trace_hi
        sp.trace_lo sp.span_id sp.parent_id sp.start_ns sp.elapsed_ns sp.name)
    sps;
  Buffer.contents buf

let hex64_opt s =
  (* Int64.of_string with "0x" accepts the full unsigned range; reject
     signs and junk that of_string would let through *)
  if s = "" then None
  else if String.exists (fun c -> c = '+' || c = '-' || c = '_') s then None
  else Int64.of_string_opt ("0x" ^ s)

let dec64_opt s =
  if s = "" || String.exists (fun c -> c = '_') s then None
  else Int64.of_string_opt s

let spans_of_wire text =
  let err line_no what =
    Error (Printf.sprintf "trace wire line %d: %s" line_no what)
  in
  let lines = String.split_on_char '\n' text in
  let rec go line_no acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        if String.trim line = "" then go (line_no + 1) acc rest
        else
          match
            String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
          with
          | [ "s"; hi; lo; span; parent; start; elapsed; name ] -> (
              match
                ( hex64_opt hi,
                  hex64_opt lo,
                  hex64_opt span,
                  hex64_opt parent,
                  dec64_opt start,
                  dec64_opt elapsed )
              with
              | ( Some trace_hi,
                  Some trace_lo,
                  Some span_id,
                  Some parent_id,
                  Some start_ns,
                  Some elapsed_ns ) ->
                  go (line_no + 1)
                    ({
                       trace_hi;
                       trace_lo;
                       span_id;
                       parent_id;
                       name;
                       start_ns;
                       elapsed_ns;
                     }
                    :: acc)
                    rest
              | _ -> err line_no "bad span fields")
          | _ -> err line_no "bad span line")
  in
  go 1 [] lines

(* ----- reassembly ----------------------------------------------------- *)

let span_order a b =
  match Int64.compare a.start_ns b.start_ns with
  | 0 -> Int64.unsigned_compare a.span_id b.span_id
  | c -> c

let tree sps =
  (* group by trace id, preserving nothing but the spans themselves:
     ordering is re-derived from (start_ns, span_id) so the result is
     independent of merge order *)
  let traces = Hashtbl.create 16 in
  List.iter
    (fun sp ->
      let key = (sp.trace_hi, sp.trace_lo) in
      Hashtbl.replace traces key
        (sp :: (Option.value ~default:[] (Hashtbl.find_opt traces key))))
    sps;
  let build_trace sps =
    let sps = List.sort span_order sps in
    let present = Hashtbl.create 16 in
    List.iter (fun sp -> Hashtbl.replace present sp.span_id ()) sps;
    (* the root is the earliest span with no recorded parent; orphans
       (parent span not recorded, e.g. an unsampled window) nest under
       it rather than vanishing *)
    let is_root sp =
      Int64.equal sp.parent_id 0L || not (Hashtbl.mem present sp.parent_id)
    in
    let root_sp =
      match List.find_opt is_root sps with
      | Some sp -> sp
      | None -> List.hd sps (* a parent cycle: degrade gracefully *)
    in
    let children_of =
      let tbl = Hashtbl.create 16 in
      List.iter
        (fun sp ->
          if not (sp == root_sp) then begin
            let parent =
              if
                Hashtbl.mem present sp.parent_id
                && not (Int64.equal sp.parent_id sp.span_id)
              then sp.parent_id
              else root_sp.span_id
            in
            Hashtbl.replace tbl parent
              (sp :: Option.value ~default:[] (Hashtbl.find_opt tbl parent))
          end)
        sps;
      fun id -> List.sort span_order (Option.value ~default:[] (Hashtbl.find_opt tbl id))
    in
    (* depth-bounded so a hostile parent graph cannot loop; spans past
       the bound are dropped rather than recursed into *)
    let rec node depth sp =
      {
        Span.name = sp.name;
        start_ns = sp.start_ns;
        elapsed_ns = sp.elapsed_ns;
        counters = [];
        children =
          (if depth >= 64 then []
           else List.map (node (depth + 1)) (children_of sp.span_id));
      }
    in
    node 0 root_sp
  in
  Hashtbl.fold
    (fun (hi, lo) sps acc ->
      (Printf.sprintf "%016Lx%016Lx" hi lo, build_trace sps) :: acc)
    traces []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
