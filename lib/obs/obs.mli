(** Uniform instrumentation of any {!Backend.S}.

    [instrument registry backend] returns a backend with the same
    answers whose every query is counted, timed and traced into
    [registry]:

    - counter [<p>.queries] — total queries answered;
    - histogram [<p>.latency_ns] — per-query latency (fixed buckets,
      deterministic percentiles; see {!Metrics});
    - counter [<p>.source.<source>] — answers per serving source, one
      counter per distinct {!Trace.t} [source] value seen;
    - counters [<p>.cache.hit] / [<p>.cache.miss] — distance-cache
      outcomes (only bumped when the trace reports a cache);
    - counter [<p>.entries_scanned] — cumulative label entries scanned;
    - counter [<p>.fallback_answers] — queries with
      [fallback_hops > 0];
    - counter [<p>.errors] — queries that raised (the exception is
      re-raised after being counted and timed);

    where [<p>] is [prefix] (default: the backend's [name]). Passing
    an explicit [prefix] keeps two instances of the same backend kind
    apart in one registry (the bench harness does this).

    Instrumentation routes the plain [query] through [query_detailed],
    so the trace fields are always recorded; the overhead is a clock
    read and a few counter bumps per query. *)

val instrument :
  ?clock:Clock.t ->
  ?recorder:Trace.recorder ->
  ?prefix:string ->
  Metrics.t ->
  Backend.t ->
  Backend.t
(** [recorder], when given, additionally receives every trace record
    (ring-buffered; see {!Trace.recorder}). *)
