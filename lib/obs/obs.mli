(** Uniform instrumentation of any {!Backend.S}.

    [instrument registry backend] returns a backend with the same
    answers whose every query is counted, timed and traced into
    [registry]:

    - counter [<p>.queries] — total queries answered;
    - histogram [<p>.latency_ns] — per-query latency (fixed buckets,
      deterministic percentiles; see {!Metrics});
    - counter [<p>.source.<source>] — answers per serving source, one
      counter per distinct {!Trace.t} [source] value seen;
    - counters [<p>.cache.hit] / [<p>.cache.miss] — distance-cache
      outcomes (only bumped when the trace reports a cache);
    - counter [<p>.entries_scanned] — cumulative label entries scanned;
    - counter [<p>.fallback_answers] — queries with
      [fallback_hops > 0];
    - counter [<p>.errors] — queries that raised (the exception is
      re-raised after being counted and timed);

    where [<p>] is [prefix] (default: the backend's [name]). Passing
    an explicit [prefix] keeps two instances of the same backend kind
    apart in one registry (the bench harness does this).

    Instrumentation routes the plain [query] through [query_detailed],
    so the trace fields are always recorded; the overhead is a clock
    read and a few counter bumps per query. *)

val instrument :
  ?clock:Clock.t ->
  ?recorder:Trace.recorder ->
  ?prefix:string ->
  Metrics.t ->
  Backend.t ->
  Backend.t
(** [recorder], when given, additionally receives every trace record
    (ring-buffered; see {!Trace.recorder}). *)

val instrument_op :
  ?clock:Clock.t ->
  ?exemplar:(unit -> string option) ->
  ?prefix:string ->
  Metrics.t ->
  (Ops.request -> 'a) ->
  Ops.request ->
  'a
(** Time and count one evaluation of an {!Ops.request} into

    - counter [<p>.<op>.count] — evaluations;
    - counter [<p>.<op>.errors] — evaluations that raised (re-raised
      after being counted and timed);
    - histogram [<p>.<op>.latency_ns] — per-evaluation latency;

    where [<p>] is [prefix] (default ["ops"]) and [<op>] is
    {!Ops.name} of the request ([ops.eccentricity.count],
    [ops.top_k_nearest.latency_ns], ...). [exemplar], when given, is
    consulted after the evaluation (so force-sampling decisions made
    during it are visible); a [Some] trace id becomes the latency
    bucket's exemplar ({!Metrics.observe}). Polymorphic in the result
    so richer evaluators (e.g. {!Repro_serve.Resilient_oracle.op},
    which also reports its serving stage) instrument identically. *)

val instrument_ops :
  ?clock:Clock.t ->
  ?prefix:string ->
  Metrics.t ->
  Backend.ops ->
  Backend.ops
(** The same backend with every [op] evaluation routed through
    {!instrument_op}. The point-query path ([query] /
    [query_detailed]) is left untouched — compose with {!instrument}
    for that. *)
