type t = unit -> int64

(* gettimeofday can step backwards (NTP); clamp so latencies are never
   negative. *)
let monotonic =
  let last = ref 0L in
  fun () ->
    let now = Int64.of_float (Unix.gettimeofday () *. 1e9) in
    if Int64.compare now !last > 0 then last := now;
    !last

type manual = { mutable now : int64; auto_step : int64 }

let manual ?(start = 0L) ?(auto_step = 0L) () =
  if Int64.compare auto_step 0L < 0 then
    invalid_arg "Clock.manual: auto_step must be non-negative";
  { now = start; auto_step }

let read m () =
  let t = m.now in
  m.now <- Int64.add m.now m.auto_step;
  t

let advance m delta =
  if Int64.compare delta 0L < 0 then
    invalid_arg "Clock.advance: negative step";
  m.now <- Int64.add m.now delta

let now m = m.now
