type node = {
  name : string;
  start_ns : int64;
  elapsed_ns : int64;
  counters : (string * int) list;
  children : node list;
}

(* An in-flight span. Children accumulate reversed; counters in a small
   table so repeated [count] calls in hot loops stay O(1). *)
type live = {
  l_name : string;
  l_start : int64; (* absolute clock value *)
  l_counters : (string, int ref) Hashtbl.t;
  mutable l_children : node list;
}

type ctx = {
  clock : Clock.t;
  root_start : int64;
  mutable stack : live list; (* innermost first; never empty while active *)
}

(* The ambient profiling context. Not thread-safe, like the stores this
   library observes. *)
let current : ctx option ref = ref None

let enabled () = Option.is_some !current

let fresh_live name start =
  { l_name = name; l_start = start; l_counters = Hashtbl.create 8;
    l_children = [] }

let finish ctx live end_abs =
  {
    name = live.l_name;
    start_ns = Int64.sub live.l_start ctx.root_start;
    elapsed_ns = Int64.sub end_abs live.l_start;
    counters =
      List.sort
        (fun (a, _) (b, _) -> compare a b)
        (Hashtbl.fold (fun k v acc -> (k, !v) :: acc) live.l_counters []);
    children = List.rev live.l_children;
  }

let count name k =
  match !current with
  | None -> ()
  | Some ctx -> (
      match ctx.stack with
      | [] -> ()
      | live :: _ -> (
          match Hashtbl.find_opt live.l_counters name with
          | Some r -> r := !r + k
          | None -> Hashtbl.replace live.l_counters name (ref k)))

let run ?clock ~name f =
  match !current with
  | None -> f ()
  | Some ctx ->
      let clk = Option.value clock ~default:ctx.clock in
      let live = fresh_live name (clk ()) in
      ctx.stack <- live :: ctx.stack;
      let finally () =
        (* Pop back to (and past) this span even if an exception blew
           through unbalanced inner frames. *)
        let rec pop = function
          | l :: rest when l != live ->
              (* an inner span never closed (its [finally] was skipped
                 by a raise inside ours): fold it in as-is *)
              live.l_children <- finish ctx l (clk ()) :: live.l_children;
              pop rest
          | l :: rest when l == live -> rest
          | rest -> rest
        in
        ctx.stack <- pop ctx.stack;
        let node = finish ctx live (clk ()) in
        match ctx.stack with
        | parent :: _ -> parent.l_children <- node :: parent.l_children
        | [] -> ()
      in
      Fun.protect ~finally f

let profile ?(clock = Clock.monotonic) ~name f =
  let saved = !current in
  let start = clock () in
  let root = fresh_live name start in
  let ctx = { clock; root_start = start; stack = [ root ] } in
  current := Some ctx;
  let x = Fun.protect ~finally:(fun () -> current := saved) f in
  (x, finish ctx root (clock ()))

let total_ns node = node.elapsed_ns

let rec find node name =
  if node.name = name then Some node
  else
    List.fold_left
      (fun acc child -> match acc with Some _ -> acc | None -> find child name)
      None node.children

(* JSON export. Span names are code-chosen identifiers, but escape
   anyway so the output is always valid JSON. *)
let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json node =
  let buf = Buffer.create 256 in
  let rec go node =
    Buffer.add_string buf
      (Printf.sprintf "{\"name\": \"%s\", \"start_ns\": %Ld, \"elapsed_ns\": %Ld, \"counters\": {"
         (json_escape node.name) node.start_ns node.elapsed_ns);
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ", ";
        Buffer.add_string buf (Printf.sprintf "\"%s\": %d" (json_escape k) v))
      node.counters;
    Buffer.add_string buf "}, \"children\": [";
    List.iteri
      (fun i child ->
        if i > 0 then Buffer.add_string buf ", ";
        go child)
      node.children;
    Buffer.add_string buf "]}"
  in
  go node;
  Buffer.contents buf

let pp_flame ppf root =
  let total = Int64.to_float (Int64.max root.elapsed_ns 1L) in
  let rec go depth node =
    let pct = 100.0 *. Int64.to_float node.elapsed_ns /. total in
    let indent = String.make (2 * depth) ' ' in
    let label = indent ^ node.name in
    Format.fprintf ppf "%-32s %12Ldns %5.1f%%" label node.elapsed_ns pct;
    List.iter
      (fun (k, v) -> Format.fprintf ppf "  %s=%d" k v)
      node.counters;
    Format.fprintf ppf "@.";
    List.iter (go (depth + 1)) node.children
  in
  go 0 root
