(** The one backend signature of the serving stack.

    Every distance oracle in the repository — the assoc hub labeling,
    the packed {!Flat_hub} store, the full matrix, BFS-on-demand, the
    Thorup–Zwick stretch-3 oracle and the resilient serving wrapper —
    exposes itself as a first-class module of this signature, so the
    CLI, the bench harness and {!Obs.instrument} treat them all
    identically. A backend value closes over its own state; the module
    is the query surface only.

    [query_detailed] also returns a {!Trace.t} record explaining the
    answer; the plain [query] is the uninstrumented hot path. *)

module type S = sig
  val name : string
  (** Stable identifier, used as the metric-name prefix (e.g.
      ["flat-hub-labeling"]). *)

  val space_words : int
  (** Machine words held by the query structure ([0] when unknown, e.g.
      an arbitrary injected function). *)

  val query : int -> int -> int
  (** Exact or approximate distance, {!Repro_graph.Dist.inf} when
      unreachable. *)

  val query_detailed : int -> int -> int * Trace.t
  (** Like [query], with the trace record explaining the answer. *)
end

type t = (module S)

val name : t -> string
val space_words : t -> int
val query : t -> int -> int -> int
val query_detailed : t -> int -> int -> int * Trace.t

val make :
  name:string ->
  space_words:int ->
  ?detailed:(int -> int -> int * Trace.t) ->
  (int -> int -> int) ->
  t
(** Pack a query function as a backend. Without [detailed],
    [query_detailed] wraps the plain query in a minimal trace
    ([source = name], nothing else filled in). *)

(** {2 The ops surface}

    The widened signature: a backend that additionally evaluates the
    whole {!Ops.request} algebra (eccentricity, top-k, one-to-many,
    ...). Fast stores implement [op] natively over an inverted hub
    index ({!Repro_hub.Flat_hub.ops}, {!Repro_hub.Mmap_hub.ops});
    any plain {!S} joins the surface through {!lift}, which answers
    aggregates by brute-force point queries — slower, never wrong, so
    every backend serves every operation. *)

module type S_ops = sig
  include S

  val op : Ops.request -> Ops.response
  (** Evaluate one request. Implementations may assume the request is
      valid for this backend's vertex universe ({!Ops.validate});
      serving layers validate before dispatch and out-of-range
      requests raise [Invalid_argument]. *)
end

type ops = (module S_ops)

val ops_name : ops -> string
val ops_space_words : ops -> int
val op : ops -> Ops.request -> Ops.response

val base : ops -> t
(** Forget the ops surface — the same backend as a plain {!S}. *)

val make_ops :
  name:string ->
  space_words:int ->
  ?detailed:(int -> int -> int * Trace.t) ->
  op:(Ops.request -> Ops.response) ->
  (int -> int -> int) ->
  ops
(** {!make} plus an [op] evaluator. *)

val lift : n:int -> t -> ops
(** Adapt a plain backend: [op] is {!Ops.brute} over its [query], so
    aggregate requests cost up to [n] (diameter: [n^2]) point
    queries. [n] is the backend's vertex universe. *)
