(** The request/response algebra of the query surface.

    Hub labels answer far more than point-to-point distance: the same
    two-pointer merges (plus one inverted hub → vertices index) yield
    distance rows, eccentricities, diameter/radius, farthest vertices
    and top-k nearest neighbours (Ducoffe, "Eccentricity queries and
    beyond using Hub Labels", PAPERS.md). This module is the one typed
    vocabulary every layer speaks — backends ({!Backend.S_ops}), the
    resilient oracle, the wire protocol, the sharded router, the CLI
    and the metrics — so a new operation is added here once instead of
    being plumbed bespoke through each of them.

    {2 Answer conventions (pinned by the differential suite)}

    - distances use the {!Repro_graph.Dist} convention: {!Dist.inf}
      for unreachable, rendered ["inf"];
    - the eccentricity of a vertex ranges over {e all} vertices
      (including itself), so any vertex of a disconnected graph has
      eccentricity [inf], and then diameter = radius = [inf];
    - ties on "farthest" go to the {e smallest} vertex id;
    - top-k results are sorted by [(dist, vertex)] ascending and
      include the source itself (at distance 0);
    - the empty graph has diameter 0 and radius 0.

    Every implementation — brute force over a point oracle
    ({!brute}), the inverted-index fast paths
    ({!Repro_hub.Hub_index}), the BFS fallbacks and the sharded
    router's merge — must be byte-identical under
    {!response_to_string}. *)

type request =
  | Dist of { u : int; v : int }
  | Batch of (int * int) array
  | One_to_many of { source : int; targets : int array }
      (** Distances from [source] to each listed target, in order. *)
  | Many_to_many of { sources : int array; targets : int array }
      (** The [sources] x [targets] distance matrix, row per source. *)
  | Top_k_nearest of { source : int; k : int }
      (** The [min k n] nearest vertices, sorted by [(dist, vertex)]. *)
  | Eccentricity of int
  | Farthest of int
      (** The farthest vertex from the argument (smallest id on ties)
          together with its distance — the witness behind
          [Eccentricity]. *)
  | Diameter_radius
      (** [max] and [min] eccentricity over every vertex. *)

type response =
  | R_dist of int
  | R_dists of int array
  | R_matrix of int array array
  | R_nearest of (int * int) array  (** [(vertex, dist)] pairs *)
  | R_ecc of int
  | R_farthest of { vertex : int; dist : int }
  | R_diam_rad of { diameter : int; radius : int }

val name : request -> string
(** Stable metric-name component: ["dist"], ["batch"],
    ["one_to_many"], ["many_to_many"], ["top_k_nearest"],
    ["eccentricity"], ["farthest"], ["diameter_radius"]. *)

val validate : n:int -> request -> (unit, string) result
(** Total request validation against a vertex universe of size [n]:
    every referenced vertex in range, [k >= 0]. Backends may assume a
    validated request; serving layers call this before dispatch. *)

val request_to_string : request -> string
(** The CLI spelling, e.g. ["dist:3,7"], ["one-to-many:0:1,2,3"],
    ["top-k:5,4"], ["ecc:2"], ["diam"]. Round-trips through
    {!request_of_string}. *)

val request_of_string : string -> (request, string) result
(** Parse the CLI spelling. Accepted forms: [dist:U,V],
    [batch:U,V;U,V;...], [one-to-many:S:T1,T2,...],
    [many-to-many:S1,S2,...:T1,T2,...], [top-k:S,K], [ecc:V],
    [farthest:V], [diam]. Total: every malformed input is an [Error]. *)

val response_to_string : response -> string
(** The canonical rendering, e.g. ["dists 1,2,inf"],
    ["farthest 7:3"], ["diam inf rad inf"] — the string that is
    sha256-pinned across stores, job counts and in-process vs sharded
    execution (BENCH_ops.json, @ops-smoke). *)

val equal_response : response -> response -> bool
val pp_response : Format.formatter -> response -> unit

(** {2 Shared reduction helpers}

    Every implementation uses these, so the tie-breaking conventions
    cannot drift between the fast paths, the fallbacks and the
    router's cross-shard merges. *)

val k_nearest : k:int -> (int * int) array -> (int * int) array
(** The [min k (length pairs)] smallest [(vertex, dist)] pairs of an
    unordered candidate set, sorted by [(dist, vertex)] ascending.
    @raise Invalid_argument if [k < 0]. *)

val farthest_of : (int * int) array -> (int * int) option
(** The pair with maximal [dist], smallest [vertex] on ties; [None]
    on the empty array. *)

val row_pairs : int array -> (int * int) array
(** A full distance row (indexed by vertex) as [(vertex, dist)]
    candidates for the reducers above. *)

val brute : n:int -> query:(int -> int -> int) -> request -> response
(** Evaluate any request with point queries only — the {!Backend.lift}
    adaptor and the reference the differential tests pin the fast
    paths against. Aggregate requests cost up to [n] (or [n^2] for
    [Diameter_radius]) queries. Requests must be valid for [n]. *)
