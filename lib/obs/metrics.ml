type counter = { mutable count : int }
type gauge = { mutable value : int }

type histogram = {
  bounds : int array; (* strictly increasing bucket upper bounds *)
  buckets : int array; (* length bounds + 1; last slot is overflow *)
  exemplars : string option array; (* per bucket: last sampled trace id *)
  mutable total : int;
  mutable sum : int;
  mutable max_seen : int;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram
type t = { tbl : (string, metric) Hashtbl.t }

let create () = { tbl = Hashtbl.create 32 }

let register t name make check =
  match Hashtbl.find_opt t.tbl name with
  | Some m -> check m
  | None ->
      let m = make () in
      Hashtbl.add t.tbl name m;
      m

let kind_error name =
  invalid_arg
    (Printf.sprintf "Metrics: %S already registered as a different kind" name)

let counter t name =
  match
    register t name
      (fun () -> Counter { count = 0 })
      (function Counter _ as m -> m | _ -> kind_error name)
  with
  | Counter c -> c
  | _ -> assert false

let incr ?(by = 1) c =
  if by < 0 then invalid_arg "Metrics.incr: negative increment";
  c.count <- c.count + by

let counter_value c = c.count

let gauge t name =
  match
    register t name
      (fun () -> Gauge { value = 0 })
      (function Gauge _ as m -> m | _ -> kind_error name)
  with
  | Gauge g -> g
  | _ -> assert false

let set_gauge g v = g.value <- v
let gauge_value g = g.value

let default_latency_buckets =
  [|
    100; 250; 500; 1_000; 2_500; 5_000; 10_000; 25_000; 50_000; 100_000;
    250_000; 500_000; 1_000_000; 2_500_000; 5_000_000; 10_000_000; 50_000_000;
    100_000_000; 500_000_000; 1_000_000_000;
  |]

let check_bounds bounds =
  if Array.length bounds = 0 then
    invalid_arg "Metrics.histogram: empty bucket bounds";
  for i = 1 to Array.length bounds - 1 do
    if bounds.(i) <= bounds.(i - 1) then
      invalid_arg "Metrics.histogram: bounds must be strictly increasing"
  done

let histogram ?(buckets = default_latency_buckets) t name =
  check_bounds buckets;
  match
    register t name
      (fun () ->
        Histogram
          {
            bounds = Array.copy buckets;
            buckets = Array.make (Array.length buckets + 1) 0;
            exemplars = Array.make (Array.length buckets + 1) None;
            total = 0;
            sum = 0;
            max_seen = 0;
          })
      (function
        | Histogram h as m ->
            if h.bounds <> buckets then
              invalid_arg
                (Printf.sprintf
                   "Metrics: histogram %S already registered with different \
                    buckets"
                   name);
            m
        | _ -> kind_error name)
  with
  | Histogram h -> h
  | _ -> assert false

(* Index of the first bound >= v, or (length bounds) for overflow. *)
let bucket_of h v =
  let lo = ref 0 and hi = ref (Array.length h.bounds) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if h.bounds.(mid) >= v then hi := mid else lo := mid + 1
  done;
  !lo

let observe ?exemplar h v =
  let v = max v 0 in
  let b = bucket_of h v in
  h.buckets.(b) <- h.buckets.(b) + 1;
  h.total <- h.total + 1;
  h.sum <- h.sum + v;
  if v > h.max_seen then h.max_seen <- v;
  match exemplar with
  | None -> ()
  | Some _ -> h.exemplars.(b) <- exemplar

let observe_span ?(clock = Clock.monotonic) ?exemplar h f =
  let t0 = clock () in
  let finally () =
    let v = Int64.to_int (Int64.sub (clock ()) t0) in
    (* resolve the exemplar after the thunk: by then the caller knows
       whether the work was sampled or force-sampled *)
    observe ?exemplar:(Option.bind exemplar (fun f -> f ())) h v
  in
  Fun.protect ~finally f

let hist_count h = h.total
let hist_sum h = h.sum
let hist_max h = h.max_seen

(* [hist_summary] below reuses the [exemplars] field name; bind the
   histogram's array accessor while it is still unambiguous *)
let hist_exemplar_slots h = h.exemplars

let percentile h q =
  if q <= 0.0 || q > 1.0 then
    invalid_arg "Metrics.percentile: q must lie in (0, 1]";
  if h.total = 0 then 0
  else begin
    let rank = Stdlib.max 1 (int_of_float (ceil (q *. float_of_int h.total))) in
    let acc = ref 0 and b = ref 0 in
    while !acc < rank do
      acc := !acc + h.buckets.(!b);
      if !acc < rank then Stdlib.incr b
    done;
    if !b >= Array.length h.bounds then h.max_seen
    else Stdlib.min h.bounds.(!b) h.max_seen
  end

type hist_summary = {
  count : int;
  sum : int;
  p50 : int;
  p90 : int;
  p99 : int;
  max : int;
  exemplars : (int * string) list; (* bucket index -> last trace id, sorted *)
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * int) list;
  histograms : (string * hist_summary) list;
}

let summarise h =
  let slots = hist_exemplar_slots h in
  let exemplars = ref [] in
  for i = Array.length slots - 1 downto 0 do
    match slots.(i) with
    | Some id -> exemplars := (i, id) :: !exemplars
    | None -> ()
  done;
  {
    count = h.total;
    sum = h.sum;
    p50 = percentile h 0.5;
    p90 = percentile h 0.9;
    p99 = percentile h 0.99;
    max = h.max_seen;
    exemplars = !exemplars;
  }

let snapshot t =
  let by_name l = List.sort (fun (a, _) (b, _) -> compare a b) l in
  let counters = ref [] and gauges = ref [] and histograms = ref [] in
  Hashtbl.iter
    (fun name -> function
      | Counter c -> counters := (name, c.count) :: !counters
      | Gauge g -> gauges := (name, g.value) :: !gauges
      | Histogram h -> histograms := (name, summarise h) :: !histograms)
    t.tbl;
  {
    counters = by_name !counters;
    gauges = by_name !gauges;
    histograms = by_name !histograms;
  }

let find_counter s name = List.assoc_opt name s.counters
let find_histogram s name = List.assoc_opt name s.histograms

let prefix_snapshot p s =
  let add l = List.map (fun (name, v) -> (p ^ name, v)) l in
  {
    counters = add s.counters;
    gauges = add s.gauges;
    histograms = add s.histograms;
  }

let union_snapshots snaps =
  let by_name l = List.stable_sort (fun (a, _) (b, _) -> compare a b) l in
  {
    counters = by_name (List.concat_map (fun s -> s.counters) snaps);
    gauges = by_name (List.concat_map (fun s -> s.gauges) snaps);
    histograms = by_name (List.concat_map (fun s -> s.histograms) snaps);
  }

(* Wire form: one metric per line, whitespace-separated fields. The
   shard tier ships worker snapshots through this; it must be canonical
   (equal snapshots -> equal bytes) and parse without exceptions. *)

let check_wire_name name =
  String.iter
    (fun c ->
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then
        invalid_arg
          (Printf.sprintf "Metrics.snapshot_to_wire: name %S contains \
                           whitespace" name))
    name

let snapshot_to_wire s =
  let buf = Buffer.create 512 in
  List.iter
    (fun (name, v) ->
      check_wire_name name;
      Printf.bprintf buf "c %s %d\n" name v)
    s.counters;
  List.iter
    (fun (name, v) ->
      check_wire_name name;
      Printf.bprintf buf "g %s %d\n" name v)
    s.gauges;
  List.iter
    (fun (name, h) ->
      check_wire_name name;
      Printf.bprintf buf "h %s %d %d %d %d %d %d\n" name h.count h.sum h.p50
        h.p90 h.p99 h.max;
      List.iter
        (fun (bucket, ex) ->
          check_wire_name ex;
          Printf.bprintf buf "x %s %d %s\n" name bucket ex)
        h.exemplars)
    s.histograms;
  Buffer.contents buf

let snapshot_of_wire text =
  let err line_no what =
    Error (Printf.sprintf "metrics wire line %d: %s" line_no what)
  in
  let lines = String.split_on_char '\n' text in
  let rec go line_no counters gauges histograms = function
    | [] ->
        Ok
          {
            counters = List.rev counters;
            gauges = List.rev gauges;
            histograms = List.rev histograms;
          }
    | line :: rest -> (
        if String.trim line = "" then
          go (line_no + 1) counters gauges histograms rest
        else
          match
            String.split_on_char ' ' line
            |> List.filter (fun s -> s <> "")
          with
          | "c" :: name :: [ v ] -> (
              match int_of_string_opt v with
              | Some v ->
                  go (line_no + 1) ((name, v) :: counters) gauges histograms
                    rest
              | None -> err line_no "bad counter value")
          | "g" :: name :: [ v ] -> (
              match int_of_string_opt v with
              | Some v ->
                  go (line_no + 1) counters ((name, v) :: gauges) histograms
                    rest
              | None -> err line_no "bad gauge value")
          | "h" :: name :: fields -> (
              match List.map int_of_string_opt fields with
              | [ Some count; Some sum; Some p50; Some p90; Some p99; Some max ]
                ->
                  go (line_no + 1) counters gauges
                    (( name,
                       { count; sum; p50; p90; p99; max; exemplars = [] } )
                    :: histograms)
                    rest
              | _ -> err line_no "bad histogram fields")
          | [ "x"; name; bucket; ex ] -> (
              match (int_of_string_opt bucket, List.assoc_opt name histograms)
              with
              | Some bucket, Some h when bucket >= 0 ->
                  let h = { h with exemplars = h.exemplars @ [ (bucket, ex) ] } in
                  go (line_no + 1) counters gauges
                    ((name, h) :: List.remove_assoc name histograms)
                    rest
              | Some _, Some _ -> err line_no "negative exemplar bucket"
              | Some _, None -> err line_no "exemplar for unknown histogram"
              | None, _ -> err line_no "bad exemplar bucket")
          | _ -> err line_no "bad metric line")
  in
  go 1 [] [] [] lines

(* Metric names are identifier-like by convention, but escape anyway so
   the output is always valid JSON. *)
let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json s =
  let buf = Buffer.create 1024 in
  let obj fields body =
    Buffer.add_string buf "{";
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_string buf ", ";
        body x)
      fields;
    Buffer.add_string buf "}"
  in
  Buffer.add_string buf "{\n  \"counters\": ";
  obj s.counters (fun (name, v) ->
      Buffer.add_string buf (Printf.sprintf "\"%s\": %d" (json_escape name) v));
  Buffer.add_string buf ",\n  \"gauges\": ";
  obj s.gauges (fun (name, v) ->
      Buffer.add_string buf (Printf.sprintf "\"%s\": %d" (json_escape name) v));
  Buffer.add_string buf ",\n  \"histograms\": ";
  obj s.histograms (fun (name, h) ->
      (* exemplars appear only when present, keeping exemplar-free
         output byte-identical to the historical form *)
      let exemplars =
        match h.exemplars with
        | [] -> ""
        | exs ->
            let fields =
              List.map
                (fun (bucket, ex) ->
                  Printf.sprintf "\"%d\": \"%s\"" bucket (json_escape ex))
                exs
            in
            Printf.sprintf ", \"exemplars\": {%s}" (String.concat ", " fields)
      in
      Buffer.add_string buf
        (Printf.sprintf
           "\"%s\": {\"count\": %d, \"sum_ns\": %d, \"p50_ns\": %d, \
            \"p90_ns\": %d, \"p99_ns\": %d, \"max_ns\": %d%s}"
           (json_escape name) h.count h.sum h.p50 h.p90 h.p99 h.max exemplars));
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf

(* Prometheus text exposition (version 0.0.4). Operates on the registry
   rather than a snapshot: the classic format wants full cumulative
   bucket counts, which summaries no longer carry. *)

let prom_name name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let to_prometheus t =
  let buf = Buffer.create 1024 in
  let metrics =
    Hashtbl.fold (fun name m acc -> (name, m) :: acc) t.tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter
    (fun (name, m) ->
      let pname = prom_name name in
      match m with
      | Counter c ->
          Printf.bprintf buf "# TYPE %s_total counter\n%s_total %d\n" pname
            pname c.count
      | Gauge g ->
          Printf.bprintf buf "# TYPE %s gauge\n%s %d\n" pname pname g.value
      | Histogram h ->
          Printf.bprintf buf "# TYPE %s histogram\n" pname;
          let acc = ref 0 in
          Array.iteri
            (fun i bound ->
              acc := !acc + h.buckets.(i);
              Printf.bprintf buf "%s_bucket{le=\"%d\"} %d\n" pname bound !acc)
            h.bounds;
          Printf.bprintf buf "%s_bucket{le=\"+Inf\"} %d\n" pname h.total;
          Printf.bprintf buf "%s_sum %d\n" pname h.sum;
          Printf.bprintf buf "%s_count %d\n" pname h.total)
    metrics;
  Buffer.contents buf

(* Runtime gauges, refreshed at snapshot time. Gc.stat (not quick_stat)
   is deliberate: live_words needs the full walk. It forces a major
   collection, which is fine at snapshot cadence and keeps the numbers
   deterministic across identical same-binary runs. *)
let sample_runtime_gauges t =
  let st = Gc.stat () in
  set_gauge (gauge t "runtime.gc.minor_collections") st.Gc.minor_collections;
  set_gauge (gauge t "runtime.gc.major_collections") st.Gc.major_collections;
  set_gauge (gauge t "runtime.heap_words") st.Gc.heap_words;
  set_gauge (gauge t "runtime.live_words") st.Gc.live_words

let pp ppf s =
  List.iter
    (fun (name, v) -> Format.fprintf ppf "counter   %-42s %d@." name v)
    s.counters;
  List.iter
    (fun (name, v) -> Format.fprintf ppf "gauge     %-42s %d@." name v)
    s.gauges;
  List.iter
    (fun (name, h) ->
      Format.fprintf ppf
        "histogram %-42s count=%d p50=%dns p90=%dns p99=%dns max=%dns@." name
        h.count h.p50 h.p90 h.p99 h.max)
    s.histograms
