module type S = sig
  val name : string
  val space_words : int
  val query : int -> int -> int
  val query_detailed : int -> int -> int * Trace.t
end

type t = (module S)

let name (module B : S) = B.name
let space_words (module B : S) = B.space_words
let query (module B : S) = B.query
let query_detailed (module B : S) = B.query_detailed

let make ~name ~space_words ?detailed q =
  let module B = struct
    let name = name
    let space_words = space_words
    let query = q

    let query_detailed =
      match detailed with
      | Some f -> f
      | None ->
          fun u v ->
            let d = q u v in
            (d, Trace.make ~source:name ~u ~v ~dist:d ())
  end in
  (module B : S)

module type S_ops = sig
  include S

  val op : Ops.request -> Ops.response
end

type ops = (module S_ops)

let ops_name (module B : S_ops) = B.name
let ops_space_words (module B : S_ops) = B.space_words
let op (module B : S_ops) = B.op
let base (module B : S_ops) = (module B : S)

let make_ops ~name ~space_words ?detailed ~op q =
  let module Base = (val make ~name ~space_words ?detailed q : S)
  in
  let module B = struct
    include Base

    let op = op
  end in
  (module B : S_ops)

let lift ~n backend =
  let module Base = (val backend : S) in
  let module B = struct
    include Base

    let op = Ops.brute ~n ~query:Base.query
  end in
  (module B : S_ops)
