let instrument ?(clock = Clock.monotonic) ?recorder ?prefix registry backend =
  let module B = (val backend : Backend.S) in
  let p = Option.value prefix ~default:B.name in
  let c_queries = Metrics.counter registry (p ^ ".queries") in
  let c_errors = Metrics.counter registry (p ^ ".errors") in
  let c_hit = Metrics.counter registry (p ^ ".cache.hit") in
  let c_miss = Metrics.counter registry (p ^ ".cache.miss") in
  let c_scanned = Metrics.counter registry (p ^ ".entries_scanned") in
  let c_fallback = Metrics.counter registry (p ^ ".fallback_answers") in
  let h_latency = Metrics.histogram registry (p ^ ".latency_ns") in
  let elapsed t0 = Int64.to_int (Int64.sub (clock ()) t0) in
  let timed u v =
    let t0 = clock () in
    match B.query_detailed u v with
    | exception e ->
        Metrics.observe h_latency (elapsed t0);
        Metrics.incr c_queries;
        Metrics.incr c_errors;
        raise e
    | (_, tr) as res ->
        Metrics.observe h_latency (elapsed t0);
        Metrics.incr c_queries;
        (match tr.Trace.cache with
        | Trace.Hit -> Metrics.incr c_hit
        | Trace.Miss -> Metrics.incr c_miss
        | Trace.Uncached -> ());
        Metrics.incr ~by:tr.Trace.entries_scanned c_scanned;
        if tr.Trace.fallback_hops > 0 then Metrics.incr c_fallback;
        Metrics.incr
          (Metrics.counter registry (p ^ ".source." ^ tr.Trace.source));
        Option.iter (fun r -> Trace.record r tr) recorder;
        res
  in
  Backend.make ~name:B.name ~space_words:B.space_words ~detailed:timed
    (fun u v -> fst (timed u v))

let instrument_op ?(clock = Clock.monotonic) ?exemplar ?(prefix = "ops")
    registry f req =
  let base = prefix ^ "." ^ Ops.name req in
  let h_latency = Metrics.histogram registry (base ^ ".latency_ns") in
  let c_count = Metrics.counter registry (base ^ ".count") in
  let c_errors = Metrics.counter registry (base ^ ".errors") in
  let t0 = clock () in
  let finish () =
    (* the exemplar thunk runs after [f]: by now the caller knows
       whether this request's trace was (force-)sampled *)
    let exemplar = Option.bind exemplar (fun g -> g ()) in
    Metrics.observe ?exemplar h_latency (Int64.to_int (Int64.sub (clock ()) t0));
    Metrics.incr c_count
  in
  match f req with
  | exception e ->
      finish ();
      Metrics.incr c_errors;
      raise e
  | res ->
      finish ();
      res

let instrument_ops ?clock ?prefix registry backend =
  let module B = (val backend : Backend.S_ops) in
  let module I = struct
    include B

    let op req = instrument_op ?clock ?prefix registry B.op req
  end in
  (module I : Backend.S_ops)
