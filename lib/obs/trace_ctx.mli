(** Cross-process trace contexts for the sharded serving tier.

    A trace context is a 128-bit trace id, a 64-bit span id and two
    sampling flags, small enough to ride every {!Repro_shard.Wire}
    request frame as a 25-byte optional block. All ids are produced by
    deterministic mixing of [(seed, sequence)] — two same-seed runs of
    the same workload mint identical trace ids, which is what keeps the
    [serve trace] output byte-identical under the manual {!Clock}.

    Sampling is {e head-based}: the decision is a pure hash of the
    trace id ({!head_sample}), made once at the root and propagated in
    the context, so every process in the request path agrees without
    coordination. Degraded, retried or slow requests are {e force}
    sampled after the fact ({!force}) — the spans of an unlucky query
    are recorded even when the head decision said no (shards only
    contribute their child spans to such traces when they themselves
    observed the degradation, since the in-flight context still carries
    the original decision).

    Completed spans are {!span} records in a bounded {!store}; the
    router pulls each worker's store over the wire
    ({!spans_to_wire} / {!spans_of_wire}, canonical and total like the
    metrics wire form) and {!tree} reassembles everything into
    {!Span.node} trees, one per trace. *)

type t = {
  hi : int64;  (** trace id, high 64 bits *)
  lo : int64;  (** trace id, low 64 bits *)
  span_id : int64;  (** the sender's span, parent of work done for it *)
  sampled : bool;  (** head-sampling decision, made at the root *)
  forced : bool;  (** sampling forced by a degraded/retried/slow path *)
}

val root : seed:int -> seq:int -> t
(** Mint the context of a fresh trace: ids are a pure mix of
    [(seed, seq)], [sampled]/[forced] start false. Span ids are never
    [0] (the reserved "no parent" marker). *)

val head_sample : every:int -> t -> t
(** Set [sampled] by the deterministic 1-in-[every] head decision
    (a hash of the trace id); [every <= 1] samples everything.
    @raise Invalid_argument when [every < 1]. *)

val child : t -> seq:int -> t
(** A fresh child span id derived from the current span and [seq];
    trace id and flags are inherited. *)

val force : t -> t
(** Mark the context force-sampled ([sampled] and [forced] both set). *)

val recorded : t -> bool
(** [sampled || forced]: whether spans for this trace are recorded. *)

val id_string : t -> string
(** The 128-bit trace id as 32 lowercase hex digits — the exemplar
    string stored in {!Metrics} histogram buckets. *)

val encode : t -> string
(** The 25-byte wire block: [hi], [lo], [span_id] as 64-bit LE, then
    one flags byte (bit 0 sampled, bit 1 forced). *)

val encoded_len : int
(** 25. *)

val decode : string -> pos:int -> (t, string) result
(** Decode {!encode} output at [pos]; total — a short buffer yields
    [Error], unknown flag bits are ignored. *)

(** {1 Completed spans} *)

type span = {
  trace_hi : int64;
  trace_lo : int64;
  span_id : int64;
  parent_id : int64;  (** [0L] marks a trace root *)
  name : string;  (** whitespace-free, e.g. [rpc.shard1] *)
  start_ns : int64;
      (** clock reading of the {e recording} process — offsets are only
          comparable within one process's clock domain *)
  elapsed_ns : int64;
}

type store
(** A bounded FIFO of completed spans (oldest dropped first). Not
    thread-safe, like the registries it sits next to. *)

val store : capacity:int -> store
(** @raise Invalid_argument when [capacity < 1]. *)

val record : store -> span -> unit
val spans : store -> span list
(** In insertion order. *)

val seen : store -> int
(** Total spans ever recorded (including dropped ones). *)

val clear : store -> unit

(** {1 Wire form and reassembly} *)

val spans_to_wire : span list -> string
(** One span per line:
    [s <hi> <lo> <span> <parent> <start> <elapsed> <name>] with ids in
    hex. Canonical — equal lists serialise to equal bytes.
    @raise Invalid_argument on a name with whitespace. *)

val spans_of_wire : string -> (span list, string) result
(** Parse {!spans_to_wire} output. Malformed lines yield [Error]
    naming the 1-based line; never raises. *)

val tree : span list -> (string * Span.node) list
(** Reassemble spans (typically router + worker stores merged) into one
    {!Span.node} tree per trace, keyed and sorted by {!id_string}.
    Children nest under their [parent_id] (orphans attach to the trace
    root) and are ordered by [(start_ns, span_id)]; node [start_ns] /
    [elapsed_ns] are the recorded per-process values. Deterministic:
    equal span lists yield equal trees. *)
