open Repro_graph
open Repro_hub
open Repro_core

let measure_queries f pairs =
  let (), secs =
    Exp_util.time (fun () -> Array.iter (fun (u, v) -> ignore (f u v)) pairs)
  in
  float_of_int (Array.length pairs) /. max secs 1e-9

let run () =
  Exp_util.header
    "E-ORACLE  Exact distance oracles: the S*T tradeoff at sparse scale";
  let rng = Exp_util.rng () in
  let instances =
    [
      ("road-24x24+48", Generators.grid_with_shortcuts rng ~rows:24 ~cols:24 ~shortcuts:48, 20_000);
      ("sparse-600", Generators.random_connected rng ~n:600 ~m:1200, 20_000);
    ]
  in
  Exp_util.row [ "graph"; "oracle"; "space (words)"; "queries/s"; "S*T proxy" ];
  List.iter
    (fun (name, g, query_count) ->
      let n = Graph.n g in
      let pairs =
        Array.init query_count (fun _ ->
            (Random.State.int rng n, Random.State.int rng n))
      in
      (* every oracle — including the approximate TZ one — behind the
         single Oracle surface *)
      let labels = Pll.build g in
      let oracles =
        [
          Oracle.full g;
          Oracle.hub g labels;
          Oracle.flat g (Flat_hub.of_labels labels);
          Oracle.on_demand g;
          Oracle.of_backend (Tz_oracle.backend (Tz_oracle.build ~rng g));
        ]
      in
      List.iter
        (fun o ->
          let qps = measure_queries (fun u v -> Oracle.query o u v) pairs in
          let st =
            float_of_int (Oracle.space_words o) /. qps *. 1e6
            (* space * time-per-query, scaled to words*us *)
          in
          Exp_util.row
            [
              name;
              Oracle.name o;
              string_of_int (Oracle.space_words o);
              Printf.sprintf "%.2e" qps;
              Exp_util.fmt_float st;
            ])
        oracles)
    instances;
  Printf.printf
    "\nRoute-planning heuristics from the practice discussion (SS 1.1):\n";
  Exp_util.row
    [ "graph"; "method"; "prep s"; "shortcuts"; "queries/s"; "exact" ];
  List.iter
    (fun (name, g, _) ->
      let w = Wgraph.of_unweighted g in
      let n = Graph.n g in
      let pairs =
        Array.init 200 (fun _ -> (Random.State.int rng n, Random.State.int rng n))
      in
      let reference = Pll.build g in
      let check f =
        Array.for_all
          (fun (u, v) -> f u v = Hub_label.query reference u v)
          pairs
      in
      (* bidirectional dijkstra *)
      let qps_bd =
        measure_queries (fun u v -> Repro_route.Bidirectional.distance w u v) pairs
      in
      Exp_util.row
        [
          name;
          "bidir-dijkstra";
          "0";
          "0";
          Printf.sprintf "%.2e" qps_bd;
          string_of_bool
            (check (fun u v -> Repro_route.Bidirectional.distance w u v));
        ];
      let ch, prep = Exp_util.time (fun () -> Repro_route.Contraction.preprocess w) in
      let qps_ch =
        measure_queries (fun u v -> Repro_route.Contraction.query ch u v) pairs
      in
      Exp_util.row
        [
          name;
          "contraction-h";
          Exp_util.fmt_float prep;
          string_of_int (Repro_route.Contraction.shortcut_count ch);
          Printf.sprintf "%.2e" qps_ch;
          string_of_bool (check (fun u v -> Repro_route.Contraction.query ch u v));
        ])
    instances
